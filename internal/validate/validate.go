// Package validate is the differential half of the trace doctor: it
// re-runs, as a library, every equivalence claim the repo's performance
// work rests on. PRs 1–4 rebuilt the pipeline for speed — frozen index,
// deferred executor, pooled buffers, append/in-place codec, TBv1 — and
// each rewrite came with an "identical output" claim asserted in some
// test. This package centralises those claims so the tracedoctor CLI
// and `make doctor` can exercise all of them against arbitrary seeds,
// diffing down to the first divergent field via check.FirstDiff /
// check.DiffDatasets instead of a bare reflect.DeepEqual boolean:
//
//   - serial vs -workers N collection (experiment.Run with Workers=1
//     against Workers=2 and N; the workers arm routes through the
//     AppendDeferredExecutor + PrepareCollect two-phase path, so this
//     one differential covers both the "serial vs workers" and the
//     "sequential vs deferred executor" claims);
//   - CSV write→read→write byte stability, and Dataset→TBv1→Dataset
//     identity (the binary codec is lossless by design);
//   - trace.ReadAny format sniffing agreeing with the explicit readers;
//   - legacy probe.Render/Parse vs the zero-allocation
//     AppendRender/Parser.ParseBytes pair, byte- and field-identical;
//   - analysis.All with Workers=1 (the exact serial path) vs a parallel
//     pool, bit-identical across all ten artefacts;
//   - the out-of-core path (PR 6): the stream cursor reproducing
//     ReadBinary sample for sample, sequential analysis.AllStream
//     bit-identical to analysis.All, and the sharded parallel
//     AllStream within a documented relative tolerance (counts exact,
//     merged floats ≤ streamTol);
//   - the sharded collector (PR 8): experiment.Run with Shards=4
//     reproducing the serial dataset and stats exactly, per-shard stats
//     folding back into the fleet-wide total, the segment-file
//     write→manifest→compact cycle yielding bytes identical to encoding
//     the merged dataset directly, the manifest checker passing over a
//     freshly written segment set, the shard-aware readers
//     (trace.ReadFile on a manifest, analysis.AllSegments over unmerged
//     segments) agreeing with the in-memory reference;
//   - and, finally, the invariant checker itself over the collected
//     dataset — a differential suite is pointless if both arms agree on
//     corrupt data.
package validate

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"winlab/internal/analysis"
	"winlab/internal/ddc"
	"winlab/internal/experiment"
	"winlab/internal/machine"
	"winlab/internal/probe"
	"winlab/internal/trace"
	"winlab/internal/trace/check"
	"winlab/internal/trace/stream"
)

// Failure is one broken equivalence claim: which check, and the first
// divergence it found.
type Failure struct {
	Check  string // e.g. "collect/serial-vs-workers/dataset"
	Detail string // first divergent field, with coordinates
}

func (f Failure) String() string { return f.Check + ": " + f.Detail }

// Config parameterises a Suite run.
type Config struct {
	Seed    int64 // simulation seed; zero means 1
	Days    int   // experiment length; zero means 7 (the full paper run is 77)
	Workers int   // parallel-arm width; zero means 8
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Days <= 0 {
		c.Days = 7
	}
	if c.Workers <= 1 {
		c.Workers = 8
	}
	return c
}

// Suite runs every differential check for one seed and returns the
// failures; an empty slice means every equivalence claim held.
func Suite(cfg Config) []Failure {
	cfg = cfg.withDefaults()
	var fails []Failure
	add := func(name, detail string) {
		if detail != "" {
			fails = append(fails, Failure{Check: name, Detail: detail})
		}
	}

	serial, err := run(cfg, 1)
	if err != nil {
		// Without the reference arm nothing else can run.
		return append(fails, Failure{Check: "collect/serial", Detail: err.Error()})
	}

	// Collection: serial vs the deferred two-phase path at two widths
	// (2 catches partitioning bugs a wide pool can mask, N catches
	// contention bugs 2 cannot see).
	for _, w := range []int{2, cfg.Workers} {
		par, err := run(cfg, w)
		name := fmt.Sprintf("collect/serial-vs-workers%d", w)
		if err != nil {
			add(name, err.Error())
			continue
		}
		add(name+"/dataset", check.DiffDatasets(serial.Dataset, par.Dataset))
		add(name+"/stats", check.FirstDiff(serial.Collector, par.Collector))
	}

	add("trace/csv-write-read-write", diffCSVRoundTrip(serial.Dataset))
	add("trace/tbv1-roundtrip", diffTBRoundTrip(serial.Dataset))
	add("trace/readany-sniff", diffReadAny(serial.Dataset))

	add("probe/render-legacy-vs-append", diffRender())
	add("probe/parse-legacy-vs-reused-parser", diffParse())

	r1 := analysis.All(serial.Dataset, analysis.Options{Workers: 1})
	rN := analysis.All(serial.Dataset, analysis.Options{Workers: cfg.Workers})
	add("analysis/serial-vs-parallel", check.FirstDiff(r1, rN))

	// Streaming arms. analysis.All froze the dataset above, so a TBv1
	// encoding taken now is canonical (machine-contiguous) — the order
	// both the cursor differential and AllStream's bit-exactness
	// guarantee are stated against.
	var tb bytes.Buffer
	if err := trace.WriteBinary(&tb, serial.Dataset); err != nil {
		add("stream/encode", err.Error())
	} else {
		add("stream/cursor-vs-readbinary", diffCursor(serial.Dataset, tb.Bytes()))
		add("stream/allstream-vs-all", diffAllStream(r1, tb.Bytes(), 1))
		add("stream/allstream-parallel", diffAllStreamApprox(r1, tb.Bytes(), cfg.Workers))
	}

	// Sharded collection arms (PR 8). The sharded collector keeps one
	// serial scheduling chain, so its merged dataset and stats must be
	// *exactly* the serial run's — no tolerance anywhere in this block
	// except the final AllSegments arm, which inherits the parallel
	// streaming epsilon (one Welford merge per segment).
	sharded, err := runSharded(cfg, 4)
	if err != nil {
		add("shard/collect", err.Error())
	} else {
		add("shard/collect-vs-serial/dataset", check.DiffDatasets(serial.Dataset, sharded.Dataset))
		add("shard/collect-vs-serial/stats", check.FirstDiff(serial.Collector, sharded.Collector))
		add("shard/stats-sum", check.FirstDiff(sharded.Collector, ddc.SumShardStats(sharded.ShardStats)))
		diffShardSegments(serial, sharded, r1, add)
	}

	if r := check.Check(serial.Dataset, check.Options{}); !r.OK() {
		add("check/invariants", r.Err().Error())
	}
	return fails
}

// diffShardSegments exercises the on-disk segment cycle: per-shard TBv1
// segment files plus manifest, header-deep manifest check, streaming
// compaction back to one canonical trace (byte-identical to encoding
// the merged dataset directly), the manifest-aware trace.ReadFile, and
// analysis.AllSegments over the unmerged segments.
func diffShardSegments(serial, sharded *experiment.Result, r1 *analysis.Results, add func(name, detail string)) {
	dir, err := os.MkdirTemp("", "winlab-validate-segments-*")
	if err != nil {
		add("shard/segments", err.Error())
		return
	}
	defer os.RemoveAll(dir)

	mpath, err := trace.WriteSegments(dir, "run", sharded.ShardDatasets)
	if err != nil {
		add("shard/segments-write", err.Error())
		return
	}
	m, err := trace.ReadManifest(mpath)
	if err != nil {
		add("shard/segments-manifest", err.Error())
		return
	}
	if r := check.CheckManifest(m, dir, check.Options{}); !r.OK() {
		add("shard/manifest-check", r.Err().Error())
	}

	var merged bytes.Buffer
	if err := trace.MergeSegments(&merged, m, dir); err != nil {
		add("shard/segments-merge", err.Error())
		return
	}
	var direct bytes.Buffer
	if err := trace.WriteBinary(&direct, sharded.Dataset); err != nil {
		add("shard/segments-encode", err.Error())
		return
	}
	if !bytes.Equal(merged.Bytes(), direct.Bytes()) {
		add("shard/segments-merge-bytes", fmt.Sprintf(
			"compacted trace differs from direct encoding at byte %d (sizes %d vs %d)",
			firstByteDiff(merged.Bytes(), direct.Bytes()), merged.Len(), direct.Len()))
	}
	got, err := trace.ReadBinary(bytes.NewReader(merged.Bytes()))
	if err != nil {
		add("shard/segments-merge-read", err.Error())
		return
	}
	add("shard/segments-merge-dataset", check.DiffDatasets(serial.Dataset, got))

	viaFile, err := trace.ReadFile(mpath)
	if err != nil {
		add("shard/readany-manifest", err.Error())
	} else {
		add("shard/readany-manifest", check.DiffDatasets(serial.Dataset, viaFile))
	}

	rSeg, err := analysis.AllSegments(m.SegmentPaths(dir), analysis.Options{})
	if err != nil {
		add("shard/allsegments-vs-all", err.Error())
	} else {
		add("shard/allsegments-vs-all", check.FirstDiffApprox(r1, rSeg, streamTol))
	}
}

// diffCursor drains a stream cursor over tb, rebuilds a Dataset from
// the runs, and diffs it against the in-memory reference — the
// "streaming decode ≡ batch decode" claim.
func diffCursor(want *trace.Dataset, tb []byte) string {
	c, err := stream.New(bytes.NewReader(tb))
	if err != nil {
		return "open: " + err.Error()
	}
	got := &trace.Dataset{
		Start:      c.Start(),
		End:        c.End(),
		Period:     c.Period(),
		Machines:   c.Machines(),
		Iterations: c.Iterations(),
	}
	var run stream.Run
	for {
		ok, err := c.NextRun(&run)
		if err != nil {
			return "decode: " + err.Error()
		}
		if !ok {
			break
		}
		got.Samples = append(got.Samples, run.Samples...)
	}
	return check.DiffDatasets(want, got)
}

// diffAllStream asserts the sequential streaming analysis is
// bit-identical to the in-memory reference across all artefacts.
func diffAllStream(want *analysis.Results, tb []byte, workers int) string {
	c, err := stream.New(bytes.NewReader(tb))
	if err != nil {
		return "open: " + err.Error()
	}
	got, err := analysis.AllStream(c, analysis.Options{Workers: workers})
	if err != nil {
		return "allstream: " + err.Error()
	}
	return check.FirstDiff(want, got)
}

// streamTol is the relative tolerance for the parallel streaming arm:
// sharded Welford accumulators merge in a different association order
// than one serial pass, so float artefacts may differ in the last few
// bits. Integer artefacts have no such latitude and are checked
// exactly by diffAllStreamApprox.
const streamTol = 1e-9

// diffAllStreamApprox runs the parallel streaming analysis and checks
// it against the serial reference: counts exact, floats within
// streamTol relative error.
func diffAllStreamApprox(want *analysis.Results, tb []byte, workers int) string {
	c, err := stream.New(bytes.NewReader(tb))
	if err != nil {
		return "open: " + err.Error()
	}
	got, err := analysis.AllStream(c, analysis.Options{Workers: workers})
	if err != nil {
		return "allstream: " + err.Error()
	}
	return check.FirstDiffApprox(want, got, streamTol)
}

// Run executes one serial collection arm for cfg — the reference run
// the suite diffs everything against. Exported so the tracedoctor CLI
// can reuse the same configuration for its file-level round trips.
func Run(cfg Config) (*experiment.Result, error) {
	return run(cfg.withDefaults(), 1)
}

func run(cfg Config, workers int) (*experiment.Result, error) {
	ec := experiment.Default(cfg.Seed)
	ec.Days = cfg.Days
	ec.Workers = workers
	return experiment.Run(ec)
}

// runSharded executes the same experiment through the sharded collector.
func runSharded(cfg Config, shards int) (*experiment.Result, error) {
	ec := experiment.Default(cfg.Seed)
	ec.Days = cfg.Days
	ec.Shards = shards
	return experiment.Run(ec)
}

// diffCSVRoundTrip asserts write→read→write is byte-stable: the textual
// format is lossy against the in-memory dataset (%.3f floats), but one
// read/write cycle must be a fixed point.
func diffCSVRoundTrip(ds *trace.Dataset) string {
	var b1 bytes.Buffer
	if err := trace.Write(&b1, ds); err != nil {
		return "write: " + err.Error()
	}
	ds2, err := trace.Read(bytes.NewReader(b1.Bytes()))
	if err != nil {
		return "read back: " + err.Error()
	}
	var b2 bytes.Buffer
	if err := trace.Write(&b2, ds2); err != nil {
		return "re-write: " + err.Error()
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		return fmt.Sprintf("CSV not byte-stable after a read/write cycle: first divergence at byte %d (sizes %d vs %d)",
			firstByteDiff(b1.Bytes(), b2.Bytes()), b1.Len(), b2.Len())
	}
	return ""
}

// diffTBRoundTrip asserts Dataset→TBv1→Dataset is the identity.
func diffTBRoundTrip(ds *trace.Dataset) string {
	var b bytes.Buffer
	if err := trace.WriteBinary(&b, ds); err != nil {
		return "write: " + err.Error()
	}
	ds2, err := trace.ReadBinary(bytes.NewReader(b.Bytes()))
	if err != nil {
		return "read back: " + err.Error()
	}
	return check.DiffDatasets(ds, ds2)
}

// diffReadAny asserts the content-sniffing reader agrees with the
// explicit CSV and TBv1 readers on the same bytes.
func diffReadAny(ds *trace.Dataset) string {
	var csv, tb bytes.Buffer
	if err := trace.Write(&csv, ds); err != nil {
		return "write csv: " + err.Error()
	}
	if err := trace.WriteBinary(&tb, ds); err != nil {
		return "write tbv1: " + err.Error()
	}
	want, err := trace.Read(bytes.NewReader(csv.Bytes()))
	if err != nil {
		return "csv read: " + err.Error()
	}
	got, err := trace.ReadAny(bytes.NewReader(csv.Bytes()))
	if err != nil {
		return "readany(csv): " + err.Error()
	}
	if d := check.DiffDatasets(want, got); d != "" {
		return "readany(csv) " + d
	}
	got, err = trace.ReadAny(bytes.NewReader(tb.Bytes()))
	if err != nil {
		return "readany(tbv1): " + err.Error()
	}
	if d := check.DiffDatasets(ds, got); d != "" {
		return "readany(tbv1) " + d
	}
	return ""
}

// probeFixtures covers the codec's edge cases: sessions present and
// absent, MAC lists of zero/one/many, fractional clocks around the MHz
// quantisation boundary, large per-boot counters.
func probeFixtures() []machine.Snapshot {
	t0 := time.Date(2003, 10, 6, 8, 0, 0, 0, time.UTC)
	return []machine.Snapshot{
		{
			Time: t0, ID: "lab1-m01", Lab: "lab1",
			CPUModel: "Intel(R) Pentium(R) 4 CPU 2.80GHz", CPUGHz: 2.794,
			RAMMB: 512, SwapMB: 768, DiskGB: 74.5, Serial: "WD-WMA111",
			MACs: []string{"00:0d:56:aa:bb:cc"}, OS: "Windows XP",
			BootTime: t0.Add(-3 * time.Hour), Uptime: 3 * time.Hour,
			CPUIdle: 2*time.Hour + 59*time.Minute, MemLoadPct: 43, SwapLoadPct: 12,
			FreeDiskGB: 31.25, PowerCycles: 412, PowerOnHours: 9001,
			SentBytes: 123456789, RecvBytes: 987654321,
			SessionUser: "alice", SessionStart: t0.Add(-42 * time.Minute),
		},
		{
			Time: t0.Add(15 * time.Minute), ID: "lab2-m17", Lab: "lab2",
			CPUModel: "AMD Athlon XP 1700+", CPUGHz: 1.4665,
			RAMMB: 256, SwapMB: 0, DiskGB: 40, Serial: "",
			MACs:     []string{"00:0d:56:aa:bb:cc", "00:11:22:33:44:55", "aa:bb:cc:dd:ee:ff"},
			OS:       "Windows 2000",
			BootTime: t0, Uptime: 15 * time.Minute,
			CPUIdle: 14 * time.Minute, MemLoadPct: 0, SwapLoadPct: 0,
			FreeDiskGB: 0.125, PowerCycles: 1, PowerOnHours: 0,
			SentBytes: 0, RecvBytes: 42,
		},
		{
			Time: t0.Add(30 * time.Minute), ID: "lab3-m02", Lab: "lab3",
			CPUModel: "VIA C3", CPUGHz: 0.8,
			RAMMB: 128, SwapMB: 256, DiskGB: 20.001, Serial: "S/N 0",
			MACs: nil, OS: "Windows XP",
			BootTime: t0.Add(-100 * 24 * time.Hour), Uptime: 100 * 24 * time.Hour,
			CPUIdle: 99 * 24 * time.Hour, MemLoadPct: 100, SwapLoadPct: 100,
			FreeDiskGB: 19.999, PowerCycles: 1 << 40, PowerOnHours: 1 << 41,
			SentBytes: 1<<63 + 7, RecvBytes: 1 << 62,
			SessionUser: "bob", SessionStart: t0.Add(30 * time.Minute),
		},
	}
}

// diffRender asserts legacy probe.Render and the zero-allocation
// AppendRender (with a reused buffer) produce identical bytes.
func diffRender() string {
	var buf []byte
	for _, sn := range probeFixtures() {
		legacy := probe.Render(sn)
		buf = probe.AppendRender(buf[:0], sn)
		if !bytes.Equal(legacy, buf) {
			return fmt.Sprintf("snapshot %s: Render and AppendRender differ at byte %d", sn.ID, firstByteDiff(legacy, buf))
		}
	}
	return ""
}

// diffParse asserts legacy probe.Parse and a reused Parser.ParseBytes
// decode identical snapshots from the same report.
func diffParse() string {
	p := probe.NewParser()
	for _, sn := range probeFixtures() {
		report := probe.Render(sn)
		legacy, err1 := probe.Parse(report)
		reused, err2 := p.ParseBytes(report)
		if (err1 == nil) != (err2 == nil) {
			return fmt.Sprintf("snapshot %s: Parse err=%v, Parser.ParseBytes err=%v", sn.ID, err1, err2)
		}
		if err1 != nil {
			return fmt.Sprintf("snapshot %s: round-trip parse failed: %v", sn.ID, err1)
		}
		if d := check.FirstDiff(legacy, reused); d != "" {
			return fmt.Sprintf("snapshot %s: %s", sn.ID, d)
		}
	}
	return ""
}

func firstByteDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
