// Package rng provides deterministic random number streams and the
// distributions used by the workload model.
//
// Every stochastic component of the fleet simulator owns a named stream
// derived from a single experiment seed, so the whole 77-day experiment is
// reproducible bit-for-bit while components stay statistically independent:
// adding a draw to one component never perturbs another.
package rng

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Source is a deterministic random stream. It wraps math/rand with the
// distribution helpers the behaviour model needs.
type Source struct {
	r *rand.Rand
}

// New creates a stream from a raw seed.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// Derive creates an independent child stream identified by name. Identical
// (seed, name) pairs always produce identical streams.
func Derive(seed int64, name string) *Source {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return New(seed ^ int64(h.Sum64()))
}

// Derive creates a child stream of s identified by name, consuming one draw
// from s to decorrelate children created from identically-named parents.
func (s *Source) Derive(name string) *Source {
	return Derive(s.r.Int63(), name)
}

// Float64 returns a uniform draw in [0,1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform draw in [0,n).
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Int63 returns a uniform non-negative int64.
func (s *Source) Int63() int64 { return s.r.Int63() }

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.r.Float64() < p }

// Uniform returns a uniform draw in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Normal returns a normal draw with the given mean and standard deviation.
func (s *Source) Normal(mean, sd float64) float64 {
	return mean + sd*s.r.NormFloat64()
}

// BoundedNormal returns a normal draw clamped to [lo, hi].
func (s *Source) BoundedNormal(mean, sd, lo, hi float64) float64 {
	x := s.Normal(mean, sd)
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Exponential returns an exponential draw with the given mean.
func (s *Source) Exponential(mean float64) float64 {
	return s.r.ExpFloat64() * mean
}

// LogNormal returns a draw from a log-normal distribution parameterised by
// the mean and standard deviation of the *resulting* distribution (not of
// the underlying normal), which is the natural way to express "sessions
// average 1.5 h with a heavy tail".
func (s *Source) LogNormal(mean, sd float64) float64 {
	if mean <= 0 {
		return 0
	}
	v := sd * sd
	mu := math.Log(mean * mean / math.Sqrt(v+mean*mean))
	sigma := math.Sqrt(math.Log(1 + v/(mean*mean)))
	return math.Exp(mu + sigma*s.r.NormFloat64())
}

// Poisson returns a Poisson draw with the given mean using Knuth's method
// for small means and a normal approximation for large ones.
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		x := s.Normal(mean, math.Sqrt(mean))
		if x < 0 {
			return 0
		}
		return int(x + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Pick returns a uniformly random element index weighted by weights.
// It panics if weights is empty or sums to a non-positive value.
func (s *Source) Pick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		panic("rng: Pick needs positive total weight")
	}
	x := s.r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Shuffle permutes the n elements using swap, like rand.Shuffle.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	s.r.Shuffle(n, swap)
}

// Jitter returns x multiplied by a uniform factor in [1-f, 1+f].
func (s *Source) Jitter(x, f float64) float64 {
	return x * s.Uniform(1-f, 1+f)
}
