package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := Derive(42, "stream")
	b := Derive(42, "stream")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same (seed, name) diverged at draw %d", i)
		}
	}
}

func TestStreamIndependence(t *testing.T) {
	a := Derive(42, "alpha")
	b := Derive(42, "beta")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("differently-named streams coincide on %d/100 draws", same)
	}
}

func TestChildDerive(t *testing.T) {
	p1 := Derive(1, "parent")
	p2 := Derive(1, "parent")
	c1 := p1.Derive("child")
	c2 := p2.Derive("child")
	if c1.Float64() != c2.Float64() {
		t.Error("child streams of identical parents diverged")
	}
}

func TestUniformBounds(t *testing.T) {
	s := New(7)
	for i := 0; i < 1000; i++ {
		x := s.Uniform(3, 5)
		if x < 3 || x >= 5 {
			t.Fatalf("Uniform out of range: %v", x)
		}
	}
}

func TestBoundedNormalClamps(t *testing.T) {
	s := New(7)
	for i := 0; i < 1000; i++ {
		x := s.BoundedNormal(0, 100, -1, 1)
		if x < -1 || x > 1 {
			t.Fatalf("BoundedNormal out of range: %v", x)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(7)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		sum += s.Exponential(5)
	}
	mean := sum / n
	if mean < 4.8 || mean > 5.2 {
		t.Errorf("Exponential(5) empirical mean %v", mean)
	}
}

func TestLogNormalMoments(t *testing.T) {
	s := New(7)
	const mean, sd, n = 80.0, 75.0, 50000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := s.LogNormal(mean, sd)
		if x <= 0 {
			t.Fatalf("LogNormal produced %v", x)
		}
		sum += x
		sum2 += x * x
	}
	m := sum / n
	v := sum2/n - m*m
	if m < mean*0.95 || m > mean*1.05 {
		t.Errorf("LogNormal mean %v, want ≈%v", m, mean)
	}
	if sdGot := math.Sqrt(v); sdGot < sd*0.85 || sdGot > sd*1.15 {
		t.Errorf("LogNormal sd %v, want ≈%v", sdGot, sd)
	}
}

func TestLogNormalZeroMean(t *testing.T) {
	s := New(7)
	if got := s.LogNormal(0, 10); got != 0 {
		t.Errorf("LogNormal(0, ·) = %v, want 0", got)
	}
}

func TestPoissonSmallMean(t *testing.T) {
	s := New(7)
	const lambda, n = 3.0, 50000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		k := float64(s.Poisson(lambda))
		sum += k
		sum2 += k * k
	}
	m := sum / n
	v := sum2/n - m*m
	if m < 2.9 || m > 3.1 {
		t.Errorf("Poisson(3) mean %v", m)
	}
	if v < 2.7 || v > 3.3 { // Poisson variance equals its mean
		t.Errorf("Poisson(3) variance %v", v)
	}
}

func TestPoissonLargeMeanUsesApproximation(t *testing.T) {
	s := New(7)
	const lambda, n = 100.0, 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		k := s.Poisson(lambda)
		if k < 0 {
			t.Fatalf("negative Poisson draw %d", k)
		}
		sum += float64(k)
	}
	if m := sum / n; m < 98 || m > 102 {
		t.Errorf("Poisson(100) mean %v", m)
	}
}

func TestPoissonZero(t *testing.T) {
	s := New(7)
	if s.Poisson(0) != 0 || s.Poisson(-3) != 0 {
		t.Error("Poisson of non-positive mean must be 0")
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(7)
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if s.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.23 || frac > 0.27 {
		t.Errorf("Bool(0.25) frequency %v", frac)
	}
	if s.Bool(0) {
		t.Error("Bool(0) returned true")
	}
}

func TestPickWeights(t *testing.T) {
	s := New(7)
	counts := [3]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[s.Pick([]float64{1, 2, 1})]++
	}
	if f := float64(counts[1]) / n; f < 0.47 || f > 0.53 {
		t.Errorf("middle weight frequency %v, want ≈0.5", f)
	}
	// Zero-weight entries are never picked.
	for i := 0; i < 1000; i++ {
		if s.Pick([]float64{0, 1, 0}) != 1 {
			t.Fatal("picked a zero-weight entry")
		}
	}
}

func TestPickPanics(t *testing.T) {
	s := New(7)
	defer func() {
		if recover() == nil {
			t.Error("Pick with zero total weight did not panic")
		}
	}()
	s.Pick([]float64{0, 0})
}

func TestJitter(t *testing.T) {
	s := New(7)
	for i := 0; i < 1000; i++ {
		x := s.Jitter(100, 0.1)
		if x < 90 || x > 110 {
			t.Fatalf("Jitter out of range: %v", x)
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	s := New(7)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := map[int]bool{}
	for _, x := range xs {
		seen[x] = true
	}
	if len(seen) != 8 {
		t.Errorf("shuffle lost elements: %v", xs)
	}
}
