package ddc

import (
	"context"
	"time"

	"winlab/internal/machine"
	"winlab/internal/probe"
	"winlab/internal/sim"
	"winlab/internal/telemetry"
)

// StateSource provides machine snapshots at a given instant. The simulated
// fleet implements it via an adapter; a live agent implements it against
// real machine state.
type StateSource interface {
	// Snapshot probes the machine; ok is false when it is unreachable.
	Snapshot(machineID string, at time.Time) (machine.Snapshot, bool)
}

// Direct is an Executor that runs the probe in-process against a
// StateSource using a clock function — the simulation equivalent of
// psexec-ing W32Probe on the target host.
type Direct struct {
	Source StateSource
	Now    func() time.Time
}

// Exec renders the probe report for the machine, or ErrUnreachable.
func (d *Direct) Exec(machineID string) ([]byte, error) {
	sn, ok := d.Source.Snapshot(machineID, d.Now())
	if !ok {
		return nil, ErrUnreachable
	}
	return probe.Render(sn), nil
}

// ExecContext implements ContextExecutor. The probe itself is in-process
// and instantaneous, so only up-front cancellation is observed.
func (d *Direct) ExecContext(ctx context.Context, machineID string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, ErrUnreachable
	}
	return d.Exec(machineID)
}

// SimCollector drives the collection loop on a discrete-event engine: one
// iteration per period, machines probed sequentially with per-probe
// latency, every outcome handed to the post-collect hook.
type SimCollector struct {
	Cfg  Config
	Exec Executor
	Post PostCollect

	// OnIteration, when set, is called when an iteration finishes with the
	// number of machines that responded. SimCollector models the paper's
	// retry-free coordinator, so the info's health counters only reflect
	// the single attempt per machine.
	OnIteration IterationFunc

	// Telemetry, when set before Install, mirrors the run into a metrics
	// registry and records one span per probe. Latencies are simulated
	// time (the modelled probe latency), not wall time — the iteration
	// duration histogram then reports the sweep length the paper's
	// sequential coordinator would have seen.
	Telemetry *telemetry.Registry

	stats Stats
	tel   collectorTelemetry
}

// Stats returns the collector's accumulated run statistics.
func (c *SimCollector) Stats() Stats { return c.stats }

// Install schedules the collection loop on the engine from start to end.
func (c *SimCollector) Install(eng *sim.Engine, start, end time.Time) error {
	if err := c.Cfg.Validate(); err != nil {
		return err
	}
	c.tel = newCollectorTelemetry(c.Telemetry)
	iter := 0
	for at := start; at.Before(end); at = at.Add(c.Cfg.Period) {
		at := at
		thisIter := iter
		iter++
		if c.Cfg.inOutage(at) {
			c.stats.Skipped++
			c.tel.iterationsSkipped.Inc()
			continue
		}
		eng.At(at, "ddc-iteration", func(e *sim.Engine) {
			c.runIteration(e, thisIter, at)
		})
	}
	return nil
}

// runIteration probes the machines sequentially as a chain of events, each
// delayed by the previous probe's latency.
func (c *SimCollector) runIteration(eng *sim.Engine, iter int, start time.Time) {
	c.stats.Iterations++
	c.tel.iterations.Inc()
	responded := 0
	probes := 0
	var step func(e *sim.Engine, idx int)
	step = func(e *sim.Engine, idx int) {
		if idx >= len(c.Cfg.Machines) {
			end := e.Now()
			c.tel.iterationDuration.Observe(end.Sub(start))
			if c.OnIteration != nil {
				c.OnIteration(IterationInfo{
					Iter: iter, Start: start, End: end,
					Attempted: len(c.Cfg.Machines), Responded: responded,
					Probes: probes,
				})
			}
			return
		}
		id := c.Cfg.Machines[idx]
		out, err := c.Exec.Exec(id)
		c.stats.Attempts++
		probes++
		c.tel.probes.Inc()
		var lat time.Duration
		if err != nil {
			lat = c.Cfg.latFail()
			c.tel.failures.Inc()
		} else {
			lat = c.Cfg.latOK()
			c.stats.Samples++
			responded++
			c.tel.samples.Inc()
		}
		c.tel.probeDuration.Observe(lat)
		if c.tel.spans != nil {
			outcome := telemetry.OutcomeOK
			if err != nil {
				outcome = telemetry.OutcomeError
			}
			c.tel.span(id, iter, 1, lat, outcome, err)
		}
		if c.Post != nil {
			c.Post(iter, id, out, err)
		}
		e.After(lat, "ddc-probe", func(e2 *sim.Engine) { step(e2, idx+1) })
	}
	step(eng, 0)
}
