package ddc

import (
	"context"
	"sync"
	"time"

	"winlab/internal/machine"
	"winlab/internal/probe"
	"winlab/internal/sim"
	"winlab/internal/telemetry"
)

// StateSource provides machine snapshots at a given instant. The simulated
// fleet implements it via an adapter; a live agent implements it against
// real machine state.
type StateSource interface {
	// Snapshot probes the machine; ok is false when it is unreachable.
	Snapshot(machineID string, at time.Time) (machine.Snapshot, bool)
}

// Direct is an Executor that runs the probe in-process against a
// StateSource using a clock function — the simulation equivalent of
// psexec-ing W32Probe on the target host.
type Direct struct {
	Source StateSource
	Now    func() time.Time
}

// Exec renders the probe report for the machine, or ErrUnreachable. It
// deliberately does not route through Begin: the sequential hot path
// must not pay Begin's job-closure allocation.
func (d *Direct) Exec(machineID string) ([]byte, error) {
	sn, ok := d.Source.Snapshot(machineID, d.Now())
	if !ok {
		return nil, ErrUnreachable
	}
	return probe.Render(sn), nil
}

// ExecAppend implements AppendExecutor: the report is rendered into dst,
// so a collector reusing one buffer probes without allocating.
func (d *Direct) ExecAppend(dst []byte, machineID string) ([]byte, error) {
	sn, ok := d.Source.Snapshot(machineID, d.Now())
	if !ok {
		return nil, ErrUnreachable
	}
	return probe.AppendRender(dst, sn), nil
}

// Begin implements DeferredExecutor: the snapshot — the only part of the
// probe that depends on *when* it runs — is taken now, and the returned
// job renders the report from that captured state whenever (and on
// whatever goroutine) the collector pleases.
func (d *Direct) Begin(machineID string) (ProbeJob, error) {
	sn, ok := d.Source.Snapshot(machineID, d.Now())
	if !ok {
		return nil, ErrUnreachable
	}
	return func() []byte { return probe.Render(sn) }, nil
}

// BeginAppend implements AppendDeferredExecutor: like Begin, but the
// returned job renders into a caller-supplied buffer, so the deferred
// path's workers can reuse per-worker scratch.
func (d *Direct) BeginAppend(machineID string) (AppendProbeJob, error) {
	sn, ok := d.Source.Snapshot(machineID, d.Now())
	if !ok {
		return nil, ErrUnreachable
	}
	return func(dst []byte) []byte { return probe.AppendRender(dst, sn) }, nil
}

// ExecContext implements ContextExecutor. The probe itself is in-process
// and instantaneous, so only up-front cancellation is observed.
func (d *Direct) ExecContext(ctx context.Context, machineID string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, ErrUnreachable
	}
	return d.Exec(machineID)
}

// SimCollector drives the collection loop on a discrete-event engine: one
// iteration per period, machines probed sequentially with per-probe
// latency, every outcome handed to the post-collect hook.
type SimCollector struct {
	Cfg  Config
	Exec Executor
	Post PostCollect

	// Workers > 1 enables the deferred collection path when Exec
	// implements DeferredExecutor: probe *scheduling* (snapshots, latency
	// draws, telemetry) stays a serial event chain — it has to, the probe
	// at index i runs at sim-time start+Σ(latencies 0..i-1) — but the pure
	// render work is queued and fanned across Workers goroutines at the
	// end of the iteration, with post-collection committed serially in
	// machine order. The collected dataset, stats and telemetry are
	// bit-identical to the sequential path (asserted by
	// TestSimCollectorWorkersEquivalent). Zero or one keeps the fully
	// sequential paper-faithful loop.
	Workers int

	// Prepare, when set, replaces Post on the deferred path: the parse
	// half runs on the worker that rendered the report, the commit half
	// serially in machine order. Ignored unless the deferred path is
	// active (Workers > 1 and Exec implements DeferredExecutor).
	Prepare PrepareCollect

	// OnIteration, when set, is called when an iteration finishes with the
	// number of machines that responded. SimCollector models the paper's
	// retry-free coordinator, so the info's health counters only reflect
	// the single attempt per machine.
	OnIteration IterationFunc

	// Telemetry, when set before Install, mirrors the run into a metrics
	// registry and records one span per probe. Latencies are simulated
	// time (the modelled probe latency), not wall time — the iteration
	// duration histogram then reports the sweep length the paper's
	// sequential coordinator would have seen.
	Telemetry *telemetry.Registry

	stats Stats
	tel   collectorTelemetry

	// scratch is the sequential path's reusable render buffer, threaded
	// through ExecAppend when the executor supports it. The iteration
	// event chain runs serially on the engine, so one buffer suffices;
	// the report slice handed to Post aliases it and dies with the call
	// (see the PostCollect lifetime contract).
	scratch []byte
}

// Stats returns the collector's accumulated run statistics.
func (c *SimCollector) Stats() Stats { return c.stats }

// Install schedules the collection loop on the engine from start to end.
func (c *SimCollector) Install(eng *sim.Engine, start, end time.Time) error {
	if err := c.Cfg.Validate(); err != nil {
		return err
	}
	c.tel = newCollectorTelemetry(c.Telemetry)
	iter := 0
	for at := start; at.Before(end); at = at.Add(c.Cfg.Period) {
		at := at
		thisIter := iter
		iter++
		if c.Cfg.inOutage(at) {
			c.stats.Skipped++
			c.tel.iterationsSkipped.Inc()
			continue
		}
		eng.At(at, "ddc-iteration", func(e *sim.Engine) {
			c.runIteration(e, thisIter, at)
		})
	}
	return nil
}

// runIteration probes the machines sequentially as a chain of events, each
// delayed by the previous probe's latency. With Workers > 1 and a
// deferred-capable executor the chain only *schedules* (snapshot + latency
// draw per probe, in order); rendering and parsing happen at iteration
// end across the worker pool.
func (c *SimCollector) runIteration(eng *sim.Engine, iter int, start time.Time) {
	c.stats.Iterations++
	c.tel.iterations.Inc()
	if c.Workers > 1 {
		if de, ok := c.Exec.(DeferredExecutor); ok {
			c.runIterationDeferred(eng, de, iter, start)
			return
		}
	}
	ae, hasAppend := c.Exec.(AppendExecutor)
	responded := 0
	probes := 0
	var step func(e *sim.Engine, idx int)
	step = func(e *sim.Engine, idx int) {
		if idx >= len(c.Cfg.Machines) {
			end := e.Now()
			c.tel.iterationDuration.Observe(end.Sub(start))
			if c.OnIteration != nil {
				c.OnIteration(IterationInfo{
					Iter: iter, Start: start, End: end,
					Attempted: len(c.Cfg.Machines), Responded: responded,
					Probes: probes,
				})
			}
			return
		}
		id := c.Cfg.Machines[idx]
		var out []byte
		var err error
		if hasAppend {
			// Render into the collector's reusable scratch buffer: the
			// steady-state probe → post-collect cycle allocates nothing.
			out, err = ae.ExecAppend(c.scratch[:0], id)
			if out != nil {
				c.scratch = out[:0] // keep grown capacity for the next probe
			}
		} else {
			out, err = c.Exec.Exec(id)
		}
		probes++
		if err == nil {
			responded++
		}
		lat := c.accountProbe(id, iter, err)
		if c.Post != nil {
			c.Post(iter, id, out, err)
		}
		e.After(lat, "ddc-probe", func(e2 *sim.Engine) { step(e2, idx+1) })
	}
	step(eng, 0)
}

// accountProbe books one probe attempt into the run stats and telemetry
// and returns the latency the iteration chain must charge for it. Both
// the sequential and the deferred paths call it at the probe's scheduled
// instant, so counters, histograms and spans are identical either way.
func (c *SimCollector) accountProbe(id string, iter int, err error) time.Duration {
	return accountProbe(&c.Cfg, &c.stats, &c.tel, id, iter, err)
}

// accountProbe is the accounting step shared by SimCollector and
// ShardedCollector — one function, so the sharded path's fleet-wide
// stats and telemetry are identical to the serial collector's by
// construction, not by parallel maintenance.
func accountProbe(cfg *Config, stats *Stats, tel *collectorTelemetry, id string, iter int, err error) time.Duration {
	stats.Attempts++
	tel.probes.Inc()
	var lat time.Duration
	if err != nil {
		lat = cfg.latFail()
		tel.failures.Inc()
	} else {
		lat = cfg.latOK()
		stats.Samples++
		tel.samples.Inc()
	}
	tel.probeDuration.Observe(lat)
	if tel.spans != nil {
		outcome := telemetry.OutcomeOK
		if err != nil {
			outcome = telemetry.OutcomeError
		}
		tel.span(id, iter, 1, lat, outcome, err)
	}
	return lat
}

// runIterationDeferred is the Workers > 1 iteration: the event chain calls
// Begin (snapshot now, render later) and draws latencies exactly like the
// sequential loop, queueing the pure render jobs; the final event fans
// them across the pool and commits results serially in machine order.
func (c *SimCollector) runIterationDeferred(eng *sim.Engine, de DeferredExecutor, iter int, start time.Time) {
	n := len(c.Cfg.Machines)
	jobs := make([]AppendProbeJob, n)
	errs := make([]error, n)
	ade, hasAppend := de.(AppendDeferredExecutor)
	responded := 0
	var step func(e *sim.Engine, idx int)
	step = func(e *sim.Engine, idx int) {
		if idx >= n {
			c.finishDeferred(e, iter, start, responded, jobs, errs)
			return
		}
		id := c.Cfg.Machines[idx]
		var job AppendProbeJob
		var err error
		if hasAppend {
			job, err = ade.BeginAppend(id)
		} else {
			// Legacy deferred executor: adapt the job; the closure costs
			// one allocation per probe, same as Begin itself.
			var pj ProbeJob
			if pj, err = de.Begin(id); pj != nil {
				job = func([]byte) []byte { return pj() }
			}
		}
		jobs[idx], errs[idx] = job, err
		if err == nil {
			responded++
		}
		lat := c.accountProbe(id, iter, err)
		e.After(lat, "ddc-probe", func(e2 *sim.Engine) { step(e2, idx+1) })
	}
	step(eng, 0)
}

// finishDeferred renders the iteration's queued probe jobs across the
// worker pool — and, when a Prepare hook is wired, parses them there too —
// then commits post-collection serially in machine order. Runs at the
// same simulated instant the sequential path fires its OnIteration.
//
// Buffer strategy: with a Prepare hook, each worker renders every job
// into one per-worker pooled buffer and parses it immediately, so the
// buffer is reused job after job. Without Prepare the report must
// survive until the serial Post pass, so each job rents its own pooled
// buffer, returned after its Post call.
func (c *SimCollector) finishDeferred(e *sim.Engine, iter int, start time.Time, responded int, jobs []AppendProbeJob, errs []error) {
	n := len(jobs)
	var outs [][]byte
	var bufs []*reportBuf
	var commits []func()
	if c.Prepare != nil {
		commits = make([]func(), n)
	} else {
		outs = make([][]byte, n)
		bufs = make([]*reportBuf, n)
	}
	workers := c.Workers
	if workers > n {
		workers = n
	}
	idxCh := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			if commits != nil {
				// Parse-on-worker: one scratch buffer per worker.
				rb := getReportBuf()
				defer putReportBuf(rb)
				for i := range idxCh {
					var out []byte
					if jobs[i] != nil {
						out = jobs[i](rb.b[:0])
						rb.b = out[:0]
					}
					commits[i] = c.Prepare(iter, c.Cfg.Machines[i], out, errs[i])
				}
				return
			}
			for i := range idxCh {
				if jobs[i] != nil {
					rb := getReportBuf()
					outs[i] = jobs[i](rb.b[:0])
					rb.b = outs[i][:0]
					bufs[i] = rb
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	for i := 0; i < n; i++ {
		switch {
		case commits != nil:
			if commits[i] != nil {
				commits[i]()
			}
		case c.Post != nil:
			c.Post(iter, c.Cfg.Machines[i], outs[i], errs[i])
		}
		if bufs != nil && bufs[i] != nil {
			putReportBuf(bufs[i]) // report consumed; recycle its buffer
			bufs[i], outs[i] = nil, nil
		}
	}
	end := e.Now()
	c.tel.iterationDuration.Observe(end.Sub(start))
	if c.OnIteration != nil {
		c.OnIteration(IterationInfo{
			Iter: iter, Start: start, End: end,
			Attempted: n, Responded: responded, Probes: n,
		})
	}
}
