package ddc

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"winlab/internal/machine"
	"winlab/internal/probe"
	"winlab/internal/sim"
	"winlab/internal/telemetry"
	"winlab/internal/telemetry/httpx"
	"winlab/internal/trace"
)

// countOutcomes tallies the registry's buffered spans by outcome.
func countOutcomes(reg *telemetry.Registry) map[telemetry.Outcome]int {
	got := map[telemetry.Outcome]int{}
	for _, sp := range reg.Spans().Snapshot() {
		got[sp.Outcome]++
	}
	return got
}

// TestSpanOutcomesUnderFaultExecutor drives the hardened collector over
// deterministic fault injection and asserts the exact span ledger: every
// probe attempt, retry, final failure and breaker skip shows up as
// exactly one span with the right outcome.
func TestSpanOutcomesUnderFaultExecutor(t *testing.T) {
	reg := telemetry.NewRegistry()
	fx := &FaultExecutor{
		Inner:        &fakeExec{up: map[string]bool{"M1": true}},
		DownMachines: map[string]bool{"M2": true},
	}
	const iters = 8
	st, err := (&WallCollector{
		Cfg:       Config{Machines: []string{"M1", "M2"}, Period: time.Millisecond},
		Exec:      fx,
		Retry:     RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Microsecond},
		Breaker:   BreakerPolicy{FailThreshold: 2, ProbeEvery: 3},
		Telemetry: reg,
	}).Run(iters, nil)
	if err != nil {
		t.Fatal(err)
	}

	// M1 answers first try every iteration: 8 ok spans. M2 is hard-down:
	// probed at iterations 0 and 1 (opening the breaker after the 2nd
	// consecutive failed iteration), then only on the ProbeEvery=3 cadence
	// (iterations 4 and 7) — each probed iteration is one retry span plus
	// one final error span; the skipped iterations (2,3,5,6) are four
	// breaker_skip spans.
	want := map[telemetry.Outcome]int{
		telemetry.OutcomeOK:          8,
		telemetry.OutcomeRetry:       4,
		telemetry.OutcomeError:       4,
		telemetry.OutcomeBreakerSkip: 4,
	}
	got := countOutcomes(reg)
	for o, n := range want {
		if got[o] != n {
			t.Errorf("outcome %s: %d spans, want %d (all: %v)", o, got[o], n, got)
		}
	}
	if got[telemetry.OutcomeTimeout] != 0 {
		t.Errorf("unexpected timeout spans: %v", got)
	}
	// Cross-check the ledger against Stats: executed attempts = ok + retry
	// + error spans, skips match, and every span is accounted for.
	if total := got[telemetry.OutcomeOK] + got[telemetry.OutcomeRetry] + got[telemetry.OutcomeError]; total != st.Attempts {
		t.Errorf("span attempts %d != Stats.Attempts %d", total, st.Attempts)
	}
	if got[telemetry.OutcomeBreakerSkip] != st.BreakerSkipped {
		t.Errorf("breaker_skip spans %d != Stats.BreakerSkipped %d", got[telemetry.OutcomeBreakerSkip], st.BreakerSkipped)
	}
	// Span metadata: breaker skips carry attempt 0, executed attempts are
	// 1-based, and every span names a machine of the fleet.
	for _, sp := range reg.Spans().Snapshot() {
		switch sp.Outcome {
		case telemetry.OutcomeBreakerSkip:
			if sp.Attempt != 0 || sp.Machine != "M2" {
				t.Fatalf("bad breaker-skip span: %+v", sp)
			}
		case telemetry.OutcomeRetry:
			if sp.Attempt != 1 || sp.Err == "" {
				t.Fatalf("bad retry span: %+v", sp)
			}
		case telemetry.OutcomeError:
			if sp.Attempt != 2 || sp.Err == "" {
				t.Fatalf("bad error span: %+v", sp)
			}
		case telemetry.OutcomeOK:
			if sp.Machine != "M1" || sp.Attempt != 1 || sp.Err != "" {
				t.Fatalf("bad ok span: %+v", sp)
			}
		}
	}
}

// TestTimeoutSpanOutcome: a probe killed by the collector's own per-probe
// deadline is classified timeout, not error.
func TestTimeoutSpanOutcome(t *testing.T) {
	reg := telemetry.NewRegistry()
	fx := &FaultExecutor{
		Inner:        &fakeExec{up: map[string]bool{"M1": true}},
		SlowMachines: map[string]time.Duration{"M1": 200 * time.Millisecond},
	}
	_, err := (&WallCollector{
		Cfg:          Config{Machines: []string{"M1"}, Period: time.Millisecond},
		Exec:         fx,
		ProbeTimeout: 5 * time.Millisecond,
		Telemetry:    reg,
	}).Run(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	spans := reg.Spans().Snapshot()
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1: %+v", len(spans), spans)
	}
	sp := spans[0]
	if sp.Outcome != telemetry.OutcomeTimeout {
		t.Fatalf("outcome = %s, want timeout (span %+v)", sp.Outcome, sp)
	}
	if sp.Latency < 5*time.Millisecond || sp.Latency > 150*time.Millisecond {
		t.Errorf("timeout span latency %v not near the 5ms deadline", sp.Latency)
	}
}

// TestSinkParseErrorTelemetry is the LastParseError regression test: a
// malformed report must surface through LastParseError, the parse-error
// counters and a parse_error span, and be booked on the right iteration.
func TestSinkParseErrorTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	start := time.Date(2026, 8, 6, 8, 0, 0, 0, time.UTC)
	sink := NewDatasetSink(start, start.Add(time.Hour), 15*time.Minute, nil).WithTelemetry(reg)

	if sink.LastParseError() != nil {
		t.Fatal("fresh sink already has a parse error")
	}
	m := newMachine("M1")
	m.PowerOn(start)
	sn, _ := m.Snapshot(start.Add(5 * time.Minute))

	// Iteration 0: one good report, one malformed.
	sink.Post(0, "M1", probe.Render(sn), nil)
	sink.Post(0, "M2", []byte("not a probe report"), nil)
	sink.OnIteration(IterationInfo{Iter: 0, Start: start, End: start.Add(2 * time.Minute), Attempted: 2, Responded: 2})
	// Iteration 1: all good.
	sink.Post(1, "M1", probe.Render(sn), nil)
	sink.OnIteration(IterationInfo{Iter: 1, Start: start.Add(15 * time.Minute), Attempted: 2, Responded: 1})

	err := sink.LastParseError()
	if err == nil {
		t.Fatal("LastParseError = nil after malformed report")
	}
	if !strings.Contains(err.Error(), "M2") {
		t.Errorf("LastParseError does not name the machine: %v", err)
	}
	if _, derr := sink.Dataset(); !errors.Is(derr, err) && derr == nil {
		t.Error("Dataset() no longer surfaces the parse error")
	}
	ds, _ := sink.Dataset()
	if len(ds.Iterations) != 2 {
		t.Fatalf("iterations = %d", len(ds.Iterations))
	}
	if ds.Iterations[0].ParseErrors != 1 || ds.Iterations[1].ParseErrors != 0 {
		t.Errorf("parse errors booked on wrong iterations: %+v", ds.Iterations)
	}
	if got := ds.Iterations[0].End; !got.Equal(start.Add(2 * time.Minute)) {
		t.Errorf("iteration end not recorded: %v", got)
	}
	if got := reg.Counter(MetricSinkParseErrors).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricSinkParseErrors, got)
	}
	if got := reg.Counter(MetricSinkSamples).Value(); got != 2 {
		t.Errorf("%s = %d, want 2", MetricSinkSamples, got)
	}
	if got := countOutcomes(reg)[telemetry.OutcomeParseError]; got != 1 {
		t.Errorf("parse_error spans = %d, want 1", got)
	}
}

// multiSource serves snapshots for a set of machines.
type multiSource struct{ ms map[string]*machine.Machine }

func (s multiSource) Snapshot(id string, at time.Time) (machine.Snapshot, bool) {
	m := s.ms[id]
	if m == nil {
		return machine.Snapshot{}, false
	}
	return m.Snapshot(at)
}

// scrapeScalars fetches /metrics and parses every scalar line (counters,
// gauges, histogram _sum/_count) into name→value.
func scrapeScalars(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read scrape: %v", err)
	}
	vals := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") || strings.Contains(line, "_bucket{") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		vals[fields[0]] = v
	}
	return vals
}

// TestMetricsMatchStatsEndToEnd is the acceptance test for the scrape
// surface: a full TCP collection — agents, TCP executor, fault injection,
// retries, breaker, dataset sink, live HTTP endpoint — must end with
// /metrics counters that exactly equal the run's final Stats.
func TestMetricsMatchStatsEndToEnd(t *testing.T) {
	reg := telemetry.NewRegistry()
	start := time.Date(2026, 8, 6, 9, 0, 0, 0, time.UTC)

	// Three machines behind real TCP agents; M3 exists but is never
	// registered with the executor, so it behaves like a powered-off host
	// and eventually opens its breaker.
	ms := map[string]*machine.Machine{}
	exec := NewTCPExecutor()
	exec.SetTelemetry(reg)
	var agents []*Agent
	for _, id := range []string{"M1", "M2"} {
		m := newMachine(id)
		m.PowerOn(start)
		ms[id] = m
		now := start.Add(10 * time.Minute)
		a := &Agent{Source: multiSource{ms}, Telemetry: reg, Now: func() time.Time { return now }}
		addr, err := a.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		agents = append(agents, a)
		exec.Register(id, addr)
	}
	defer func() {
		for _, a := range agents {
			_ = a.Close()
		}
	}()

	// Seeded transient faults between the collector and the transport so
	// the retry path is exercised deterministically.
	fx := &FaultExecutor{Inner: exec, TransientFailP: 0.25, Seed: 11}

	machines := []string{"M1", "M2", "M3"}
	infos := []trace.MachineInfo{{ID: "M1"}, {ID: "M2"}, {ID: "M3"}}
	sink := NewDatasetSink(start, start.Add(time.Hour), time.Millisecond, infos).WithTelemetry(reg)
	coll := &WallCollector{
		Cfg:       Config{Machines: machines, Period: time.Millisecond},
		Exec:      fx,
		Post:      sink.Post,
		Retry:     RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Microsecond},
		Breaker:   BreakerPolicy{FailThreshold: 2, ProbeEvery: 4},
		Telemetry: reg,
	}
	coll.OnIteration = sink.OnIteration

	srv, err := httpx.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const iters = 12
	st, err := coll.Run(iters, nil)
	if err != nil {
		t.Fatal(err)
	}

	vals := scrapeScalars(t, srv.URL())
	checks := []struct {
		metric string
		want   int
	}{
		{MetricIterations, st.Iterations},
		{MetricProbes, st.Attempts},
		{MetricRetries, st.Retries},
		{MetricSamples, st.Samples},
		{MetricBreakerSkips, st.BreakerSkipped},
		{MetricBreakerOpens, st.BreakerOpens},
	}
	for _, c := range checks {
		got, ok := vals[c.metric]
		if !ok {
			t.Errorf("metric %s missing from scrape", c.metric)
			continue
		}
		if int(got) != c.want {
			t.Errorf("%s = %v, want %d (stats %+v)", c.metric, got, c.want, st)
		}
	}
	// Sanity: the run actually exercised the machinery under test.
	if st.Retries == 0 || st.BreakerSkipped == 0 || st.BreakerOpens == 0 || st.Samples == 0 {
		t.Fatalf("inert run, stats %+v", st)
	}
	// The sink saw every sample the collector counted, and the transport
	// metrics are live: every TCP dial carried bytes both ways.
	ds, _ := sink.Dataset()
	if int(vals[MetricSinkSamples]) != len(ds.Samples) || len(ds.Samples) != st.Samples {
		t.Errorf("sink samples %v / dataset %d / stats %d disagree",
			vals[MetricSinkSamples], len(ds.Samples), st.Samples)
	}
	if vals[MetricTCPDials] == 0 || vals[MetricTCPBytesRead] == 0 || vals[MetricTCPBytesWritten] == 0 {
		t.Errorf("transport metrics inert: dials=%v read=%v written=%v",
			vals[MetricTCPDials], vals[MetricTCPBytesRead], vals[MetricTCPBytesWritten])
	}
	if vals[MetricAgentConns] == 0 || vals[MetricAgentBytesWritten] == 0 {
		t.Errorf("agent metrics inert: conns=%v bytes=%v",
			vals[MetricAgentConns], vals[MetricAgentBytesWritten])
	}
	// Histograms booked one observation per executed probe.
	if got := int(vals[MetricProbeDuration+"_count"]); got != st.Attempts {
		t.Errorf("probe duration count = %d, want %d", got, st.Attempts)
	}
	if got := int(vals[MetricIterationDuration+"_count"]); got != st.Iterations {
		t.Errorf("iteration duration count = %d, want %d", got, st.Iterations)
	}
	// In-flight gauges must have drained back to zero.
	for _, g := range []string{MetricProbesInflight, MetricTCPInflight, MetricAgentInflight} {
		if vals[g] != 0 {
			t.Errorf("gauge %s = %v after run, want 0", g, vals[g])
		}
	}
}

// staticExec is the cheapest possible ContextExecutor: no bookkeeping, a
// preallocated payload.
type staticExec struct{ out []byte }

func (s *staticExec) Exec(string) ([]byte, error) { return s.out, nil }
func (s *staticExec) ExecContext(context.Context, string) ([]byte, error) {
	return s.out, nil
}

// errExec always fails with a fixed error.
type errExec struct{ err error }

func (e *errExec) Exec(string) ([]byte, error)                        { return nil, e.err }
func (e *errExec) ExecContext(context.Context, string) ([]byte, error) { return nil, e.err }

// TestNilTelemetryAllocFree is the acceptance guard for the uninstrumented
// hot path: with a nil registry the collector's per-probe code allocates
// no telemetry objects at all — neither on success nor on failure (the
// failure path must not even render the error string).
func TestNilTelemetryAllocFree(t *testing.T) {
	ctx := context.Background()
	tel := newCollectorTelemetry(nil)

	okColl := &WallCollector{
		Cfg:  Config{Machines: []string{"M1"}, Period: time.Millisecond},
		Exec: &staticExec{out: []byte("data")},
	}
	if allocs := testing.AllocsPerRun(200, func() {
		_ = okColl.probeWithRetry(ctx, 0, "M1", &tel)
	}); allocs != 0 {
		t.Errorf("ok probe path allocates %.1f objects/run with nil telemetry, want 0", allocs)
	}

	// Final-attempt failure (no backoff sleep: retrying allocates a timer
	// in sleepCtx regardless of telemetry, so the retry loop itself is not
	// what this guard measures — the span helper's nil path is covered
	// directly below).
	failColl := &WallCollector{
		Cfg:  Config{Machines: []string{"M1"}, Period: time.Millisecond},
		Exec: &errExec{err: ErrUnreachable},
	}
	if allocs := testing.AllocsPerRun(200, func() {
		_ = failColl.probeWithRetry(ctx, 0, "M1", &tel)
	}); allocs != 0 {
		t.Errorf("failing probe path allocates %.1f objects/run with nil telemetry, want 0", allocs)
	}

	// The span helper itself must also be free on the nil path even when
	// handed an error (no err.Error() call, no Span construction).
	if allocs := testing.AllocsPerRun(200, func() {
		tel.span("M1", 3, 1, time.Millisecond, telemetry.OutcomeError, ErrUnreachable)
	}); allocs != 0 {
		t.Errorf("nil span helper allocates %.1f objects/run, want 0", allocs)
	}

	// The PR 4 codec path: ExecAppend renders the probe report into a
	// caller-owned buffer and the reusable Parser decodes it in place —
	// with a warm buffer and parser the whole probe→parse cycle (the
	// steady-state unit of collection) allocates nothing.
	m := newMachine("M1")
	m.PowerOn(t0)
	direct := &Direct{Source: memSource{m}, Now: func() time.Time { return t0.Add(10 * time.Minute) }}
	buf := make([]byte, 0, 1024)
	parser := probe.NewParser()
	if allocs := testing.AllocsPerRun(200, func() {
		out, err := direct.ExecAppend(buf[:0], "M1")
		if err != nil {
			t.Fatal(err)
		}
		if _, perr := parser.ParseBytes(out); perr != nil {
			t.Fatal(perr)
		}
		buf = out[:0]
	}); allocs != 0 {
		t.Errorf("ExecAppend+ParseBytes cycle allocates %.1f objects/run, want 0", allocs)
	}

	// Control: the same paths with a live registry do record (the guard
	// above is meaningful, not vacuously measuring a stripped call).
	reg := telemetry.NewRegistry()
	live := newCollectorTelemetry(reg)
	live.span("M1", 3, 1, time.Millisecond, telemetry.OutcomeError, ErrUnreachable)
	if reg.Spans().Total() != 1 {
		t.Fatal("live span helper did not record")
	}
}

// TestIterationEndBothCollectors: both collectors stamp End so iteration
// latency is observable downstream.
func TestIterationEndBothCollectors(t *testing.T) {
	var infos []IterationInfo
	_, err := (&WallCollector{
		Cfg:         Config{Machines: []string{"M1"}, Period: time.Millisecond},
		Exec:        &staticExec{out: []byte("x")},
		OnIteration: func(i IterationInfo) { infos = append(infos, i) },
	}).Run(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 {
		t.Fatalf("iterations = %d", len(infos))
	}
	for _, info := range infos {
		if info.End.IsZero() || info.End.Before(info.Start) {
			t.Errorf("wall iteration %d: Start %v End %v", info.Iter, info.Start, info.End)
		}
		if info.Elapsed() < 0 {
			t.Errorf("wall iteration %d: negative elapsed %v", info.Iter, info.Elapsed())
		}
	}
}

// TestSimCollectorIterationEndIsSweepEnd: the sim collector's End is the
// simulated instant the last probe finished — start + the sum of the
// modelled probe latencies.
func TestSimCollectorIterationEndIsSweepEnd(t *testing.T) {
	reg := telemetry.NewRegistry()
	var got []IterationInfo
	c := &SimCollector{
		Cfg: Config{
			Machines:  []string{"M1", "M2"},
			Period:    15 * time.Minute,
			LatencyOK: func() time.Duration { return time.Second },
		},
		Exec:        &fakeExec{up: map[string]bool{"M1": true, "M2": true}},
		OnIteration: func(i IterationInfo) { got = append(got, i) },
		Telemetry:   reg,
	}
	eng := sim.New(t0)
	start := t0
	if err := c.Install(eng, start, start.Add(30*time.Minute)); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(start.Add(30 * time.Minute))
	if len(got) != 2 {
		t.Fatalf("iterations = %d", len(got))
	}
	for _, info := range got {
		if want := info.Start.Add(2 * time.Second); !info.End.Equal(want) {
			t.Errorf("iteration %d End = %v, want %v", info.Iter, info.End, want)
		}
		if info.Elapsed() != 2*time.Second {
			t.Errorf("iteration %d Elapsed = %v, want 2s", info.Iter, info.Elapsed())
		}
	}
	// The sim collector mirrors its counters too.
	if got := reg.Counter(MetricProbes).Value(); got != 4 {
		t.Errorf("%s = %d, want 4", MetricProbes, got)
	}
	if got := reg.Counter(MetricSamples).Value(); got != 4 {
		t.Errorf("%s = %d, want 4", MetricSamples, got)
	}
	if got := reg.Histogram(MetricIterationDuration, nil).Count(); got != 2 {
		t.Errorf("iteration duration observations = %d, want 2", got)
	}
	if got := countOutcomes(reg)[telemetry.OutcomeOK]; got != 4 {
		t.Errorf("ok spans = %d, want 4", got)
	}
}

// TestWallCollectorTelemetryWithWorkers: the instrumented concurrent path
// books exactly the same totals as the sequential one (run under -race in
// make verify).
func TestWallCollectorTelemetryWithWorkers(t *testing.T) {
	run := func(workers int) (Stats, *telemetry.Registry) {
		reg := telemetry.NewRegistry()
		st, err := (&WallCollector{
			Cfg: Config{
				Machines: []string{"M1", "M2", "M3", "M4", "M5"},
				Period:   time.Millisecond,
			},
			Exec:      &staticExec{out: []byte("x")},
			Workers:   workers,
			Telemetry: reg,
		}).Run(6, nil)
		if err != nil {
			t.Fatal(err)
		}
		return st, reg
	}
	stSeq, regSeq := run(1)
	stPar, regPar := run(4)
	if stSeq.Samples != stPar.Samples || stSeq.Attempts != stPar.Attempts {
		t.Fatalf("worker stats diverge: %+v vs %+v", stSeq, stPar)
	}
	for _, m := range []string{MetricProbes, MetricSamples, MetricIterations} {
		if a, b := regSeq.Counter(m).Value(), regPar.Counter(m).Value(); a != b {
			t.Errorf("%s: sequential %d vs workers %d", m, a, b)
		}
	}
	if a, b := regSeq.Spans().Total(), regPar.Spans().Total(); a != b {
		t.Errorf("span totals diverge: %d vs %d", a, b)
	}
}

var _ = fmt.Sprintf // keep fmt imported for debugging convenience
