package ddc

import (
	"context"
	"time"

	"winlab/internal/rng"
)

// This file implements the collector-hardening policies motivated by the
// paper's own data loss: 509 of 7,392 possible iterations were lost to
// outages, and every probe timeout was booked as a powered-off machine
// (§3). Operational fleet traces show transient probe failure is the
// dominant noise source in availability data, so the hardened collector
// retries transient failures with exponential backoff + jitter, and stops
// hammering machines that are hard-down via a per-machine circuit breaker.

// RetryPolicy bounds the re-execution of failed probes within a single
// iteration. The zero value disables retries (one attempt per machine per
// iteration — the paper's behaviour).
type RetryPolicy struct {
	// MaxAttempts is the per-machine, per-iteration attempt budget.
	// Values ≤ 1 disable retries.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; each further retry
	// doubles it. Defaults to 50 ms when retries are enabled.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth. Defaults to 2 s.
	MaxBackoff time.Duration
	// Jitter is the fraction of each backoff that is randomised, in
	// [0, 1]: the slept delay is backoff * (1 - Jitter + Jitter*u) with
	// u ~ U[0, 2). Zero means deterministic backoff.
	Jitter float64
	// Seed seeds the jitter stream, keeping backoff schedules
	// reproducible run-to-run.
	Seed int64
}

// enabled reports whether the policy retries at all.
func (p RetryPolicy) enabled() bool { return p.MaxAttempts > 1 }

// backoff returns the delay before retry number retry (0-based) with
// jitter drawn from src (which may be nil for no jitter).
func (p RetryPolicy) backoff(retry int, src *rng.Source) time.Duration {
	base := p.BaseBackoff
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxB := p.MaxBackoff
	if maxB <= 0 {
		maxB = 2 * time.Second
	}
	d := base << uint(retry)
	if d > maxB || d <= 0 { // d <= 0 guards shift overflow
		d = maxB
	}
	if p.Jitter > 0 && src != nil {
		j := p.Jitter
		if j > 1 {
			j = 1
		}
		// Spread the jittered fraction uniformly in [0, 2): full jitter
		// keeps the mean at d while decorrelating concurrent retries.
		d = time.Duration(float64(d) * (1 - j + j*2*src.Float64()))
	}
	if d < 0 {
		d = 0
	}
	return d
}

// BreakerPolicy is a per-machine circuit breaker: after FailThreshold
// consecutive failed iterations the machine is probed only once every
// ProbeEvery iterations until a probe succeeds. This keeps a hard-down
// machine (powered off for the weekend, say) from consuming a full
// retry budget every 15 minutes, while still noticing when it returns.
// The zero value disables the breaker.
type BreakerPolicy struct {
	// FailThreshold is the number of consecutive failed iterations that
	// opens the breaker. Values ≤ 0 disable the breaker.
	FailThreshold int
	// ProbeEvery is the open-breaker probe cadence in iterations.
	// Defaults to 4 (once per hour at the paper's 15-minute period).
	ProbeEvery int
}

// enabled reports whether the breaker trips at all.
func (p BreakerPolicy) enabled() bool { return p.FailThreshold > 0 }

// cadence returns the open-breaker probe period in iterations.
func (p BreakerPolicy) cadence() int {
	if p.ProbeEvery <= 0 {
		return 4
	}
	return p.ProbeEvery
}

// machineState tracks one machine's health inside a WallCollector run.
type machineState struct {
	attempts    int
	retries     int
	failures    int
	consecFails int
	open        bool
	openedIter  int // iteration at which the breaker opened
}

// shouldProbe reports whether an open breaker admits a probe this
// iteration.
func (m *machineState) shouldProbe(iter int, pol BreakerPolicy) bool {
	if !m.open {
		return true
	}
	return (iter-m.openedIter)%pol.cadence() == 0
}

// record books the outcome of one probed iteration and reports whether
// the breaker transitioned closed→open.
func (m *machineState) record(iter int, failed bool, pol BreakerPolicy) (opened bool) {
	if !failed {
		m.consecFails = 0
		m.open = false
		return false
	}
	m.failures++
	m.consecFails++
	if pol.enabled() && !m.open && m.consecFails >= pol.FailThreshold {
		m.open = true
		m.openedIter = iter
		return true
	}
	return false
}

// health converts the internal state to the exported snapshot.
func (m *machineState) health() MachineHealth {
	return MachineHealth{
		Attempts:    m.attempts,
		Retries:     m.retries,
		Failures:    m.failures,
		ConsecFails: m.consecFails,
		BreakerOpen: m.open,
	}
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
