package ddc

import (
	"bytes"
	"os"
	"testing"
	"time"

	"winlab/internal/machine"
	"winlab/internal/probe"
	"winlab/internal/sim"
)

// TestMain turns on buffer poisoning for the whole package run: every
// report buffer returned to the pool is destroyed on put, so any test
// path that illegally retains a report slice past its PostCollect /
// PrepareCollect hook reads 0xDB garbage and fails loudly instead of
// passing by luck. Production keeps PoisonBuffers off.
func TestMain(m *testing.M) {
	PoisonBuffers = true
	os.Exit(m.Run())
}

// TestPoisonOnPutDestroysAliases pins the poisoning semantics at the
// pool level: a slice aliasing a returned buffer is overwritten up to
// the buffer's full capacity, and the poisoned bytes can never parse as
// a report.
func TestPoisonOnPutDestroysAliases(t *testing.T) {
	m := newMachine("M1")
	m.PowerOn(t0)
	sn := mustSnapshot(t, m, t0.Add(10*time.Minute))

	rb := getReportBuf()
	rb.b = probe.AppendRender(rb.b, sn)
	alias := rb.b // the illegal retention a buggy hook would commit
	if _, err := probe.ParseBytes(alias); err != nil {
		t.Fatalf("rendered report does not parse: %v", err)
	}

	putReportBuf(rb)
	for i, c := range alias {
		if c != poisonByte {
			t.Fatalf("alias[%d] = %#x after put, want %#x (buffer not poisoned)", i, c, poisonByte)
		}
	}
	if _, err := probe.ParseBytes(alias); err == nil {
		t.Error("poisoned bytes parsed as a valid report")
	}

	// The next get hands back a clean, empty buffer: poison must never
	// leak into a fresh rendering.
	rb2 := getReportBuf()
	defer putReportBuf(rb2)
	out := probe.AppendRender(rb2.b, sn)
	if bytes.IndexByte(out, poisonByte) >= 0 {
		t.Error("fresh rendering contains poison bytes")
	}
	if _, err := probe.ParseBytes(out); err != nil {
		t.Errorf("re-rendered report does not parse: %v", err)
	}
}

// TestCollectionRetainsNothing runs a real deferred-path sim collection
// (Workers > 1 rents one pooled buffer per probe job) with a
// PostCollect hook that snapshots each report by copy and stashes the
// raw slice by reference. With poisoning on, the copies must survive
// intact while the retained aliases are destroyed by the time the run
// ends — proving the collector returns every rented buffer and that
// honest hooks (which parse or copy before returning) never observe
// poison. The sequential path (Workers ≤ 1) renders into a
// collector-owned scratch buffer instead of the pool, so it is outside
// this tripwire; its reports die by overwrite on the next probe.
func TestCollectionRetainsNothing(t *testing.T) {
	src := multiSource{ms: map[string]*machine.Machine{}}
	for _, id := range []string{"M1", "M2"} {
		m := newMachine(id)
		m.PowerOn(t0.Add(-time.Hour))
		src.ms[id] = m
	}

	type captured struct {
		copy  []byte
		alias []byte
	}
	var got []captured
	eng := sim.New(t0)
	end := t0.Add(31 * time.Minute)
	coll := &SimCollector{
		Cfg: Config{
			Machines:    []string{"M1", "M2"},
			Period:      15 * time.Minute,
			LatencyOK:   func() time.Duration { return time.Second },
			LatencyFail: func() time.Duration { return 4 * time.Second },
		},
		Exec:    &Direct{Source: src, Now: eng.Now},
		Workers: 2, // deferred path: one pooled buffer per probe job
		Post: func(iter int, machine string, stdout []byte, err error) {
			if err != nil {
				return
			}
			got = append(got, captured{
				copy:  append([]byte(nil), stdout...),
				alias: stdout, // contract violation, on purpose
			})
		},
	}
	if err := coll.Install(eng, t0, end); err != nil {
		t.Fatal(err)
	}
	eng.Run()

	if len(got) == 0 {
		t.Fatal("no reports captured")
	}
	for i, c := range got {
		if _, err := probe.ParseBytes(c.copy); err != nil {
			t.Errorf("report %d: honest copy corrupted: %v", i, err)
		}
		if bytes.IndexByte(c.alias, poisonByte) < 0 {
			t.Errorf("report %d: retained alias survived un-poisoned — buffer not recycled?", i)
		}
	}
}
