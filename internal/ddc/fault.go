package ddc

import (
	"context"
	"fmt"
	"sync"
	"time"

	"winlab/internal/rng"
)

// FaultExecutor wraps an Executor with deterministic, seeded fault
// injection: transient probe failures, latency spikes, permanently slow
// agents, and hard-down machines. It exists so the collector's
// retry/backoff/breaker policies are testable without a flaky network —
// the same experiment seed always injects the same fault sequence (probe
// order permitting; with Workers ≤ 1 the sequence is fully reproducible).
type FaultExecutor struct {
	Inner Executor

	// TransientFailP is the per-attempt probability of injecting a
	// transient ErrUnreachable instead of executing the probe.
	TransientFailP float64
	// LatencySpikeP is the per-attempt probability of sleeping
	// SpikeLatency before the probe runs (a congested or GC-pausing
	// agent). Spikes honour context cancellation.
	LatencySpikeP float64
	SpikeLatency  time.Duration
	// SlowMachines adds a fixed latency to every probe of the listed
	// machines — the chronically slow agent the per-probe deadline is
	// meant to bound.
	SlowMachines map[string]time.Duration
	// DownMachines are hard-down: every probe fails with ErrUnreachable.
	// This is the breaker's target scenario.
	DownMachines map[string]bool
	// DownFn, when set, is consulted in addition to DownMachines on every
	// attempt — the hook for *scheduled* unreachability, where the down
	// set changes over (simulated) time: injected availability collapses
	// close over the experiment clock and flip whole labs here. Called
	// under the executor's mutex; keep it fast and non-reentrant.
	DownFn func(machineID string) bool
	// Seed seeds the injection stream.
	Seed int64

	mu    sync.Mutex
	src   *rng.Source
	stats FaultStats
}

// FaultStats counts what the wrapper injected.
type FaultStats struct {
	Calls      int // probe attempts seen
	Transients int // injected transient failures
	Spikes     int // injected latency spikes
	DownDenied int // probes denied because the machine is hard-down
}

// Stats returns a snapshot of the injection counters.
func (f *FaultExecutor) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// decide draws the fault plan for one attempt under the mutex, so
// concurrent probes see a serialised, seed-deterministic stream.
func (f *FaultExecutor) decide(machineID string) (transient bool, delay time.Duration, down bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.src == nil {
		f.src = rng.Derive(f.Seed, "ddc-fault")
	}
	f.stats.Calls++
	if f.DownMachines[machineID] || (f.DownFn != nil && f.DownFn(machineID)) {
		f.stats.DownDenied++
		return false, 0, true
	}
	if f.TransientFailP > 0 && f.src.Float64() < f.TransientFailP {
		f.stats.Transients++
		return true, 0, false
	}
	if f.LatencySpikeP > 0 && f.src.Float64() < f.LatencySpikeP {
		f.stats.Spikes++
		delay += f.SpikeLatency
	}
	delay += f.SlowMachines[machineID]
	return false, delay, false
}

// Exec implements Executor.
func (f *FaultExecutor) Exec(machineID string) ([]byte, error) {
	return f.ExecContext(context.Background(), machineID)
}

// ExecContext implements ContextExecutor. Injected delays respect ctx; a
// cancelled delay returns ErrUnreachable, exactly like a timed-out probe.
func (f *FaultExecutor) ExecContext(ctx context.Context, machineID string) ([]byte, error) {
	transient, delay, down := f.decide(machineID)
	if down {
		return nil, fmt.Errorf("%w: %s: injected hard-down", ErrUnreachable, machineID)
	}
	if transient {
		return nil, fmt.Errorf("%w: %s: injected transient failure", ErrUnreachable, machineID)
	}
	if delay > 0 {
		sleepCtx(ctx, delay)
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrUnreachable, machineID, err)
		}
	}
	return execProbe(ctx, f.Inner, machineID)
}
