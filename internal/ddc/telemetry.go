package ddc

import (
	"time"

	"winlab/internal/telemetry"
)

// This file wires the collector to the telemetry layer. All
// instrumentation goes through pre-resolved handle structs so the probe
// hot path performs no map lookups, and every handle is nil when
// telemetry is off — the nil-safe no-op methods keep the uninstrumented
// path allocation-free (guarded by TestNilTelemetryAllocFree).

// Collector metric names. These are the stable scrape surface BENCH_*
// runs and dashboards key on; renaming one is a breaking change.
const (
	// Counters mirroring Stats exactly (asserted end-to-end in tests).
	MetricIterations        = "ddc_iterations_total"
	MetricIterationsSkipped = "ddc_iterations_skipped_total"
	MetricProbes            = "ddc_probes_total"        // == Stats.Attempts
	MetricRetries           = "ddc_probe_retries_total" // == Stats.Retries
	MetricSamples           = "ddc_samples_total"       // == Stats.Samples
	MetricBreakerSkips      = "ddc_breaker_skips_total" // == Stats.BreakerSkipped
	MetricBreakerOpens      = "ddc_breaker_opens_total" // == Stats.BreakerOpens
	MetricProbeFailures     = "ddc_probe_failures_total"

	// Gauges.
	MetricBreakerOpenMachines = "ddc_breaker_open_machines"
	MetricProbesInflight      = "ddc_probes_inflight"

	// Histograms.
	MetricProbeDuration     = "ddc_probe_duration_seconds"
	MetricIterationDuration = "ddc_iteration_duration_seconds"

	// TCP transport (TCPExecutor).
	MetricTCPDials          = "tcp_dials_total"
	MetricTCPDialErrors     = "tcp_dial_errors_total"
	MetricTCPBytesRead      = "tcp_probe_bytes_read_total"
	MetricTCPBytesWritten   = "tcp_probe_bytes_written_total"
	MetricTCPInflight       = "tcp_probes_inflight"
	MetricTCPDialDuration   = "tcp_dial_duration_seconds"
	MetricTCPProbeDuration  = "tcp_probe_duration_seconds"

	// Probe agent (Agent).
	MetricAgentConns        = "agent_conns_total"
	MetricAgentConnErrors   = "agent_conn_errors_total"
	MetricAgentBytesWritten = "agent_bytes_written_total"
	MetricAgentInflight     = "agent_conns_inflight"

	// Dataset sink (DatasetSink).
	MetricSinkSamples     = "sink_samples_total"
	MetricSinkParseErrors = "sink_parse_errors_total"
	MetricSinkIterations  = "sink_iterations_total"

	// Streaming invariant checker (AttachCheck / SinkCheck).
	MetricSinkChecked    = "sink_checked_samples_total"
	MetricSinkViolations = "sink_invariant_violations_total"
)

// collectorTelemetry holds the collector's resolved metric handles. The
// zero value (all-nil handles) is the telemetry-off state: every method
// call no-ops without a branch at the call site.
type collectorTelemetry struct {
	iterations, iterationsSkipped         *telemetry.Counter
	probes, retries, samples              *telemetry.Counter
	breakerSkips, breakerOpens, failures  *telemetry.Counter
	breakerOpenMachines, probesInflight   *telemetry.Gauge
	probeDuration, iterationDuration      *telemetry.Histogram
	spans                                 *telemetry.SpanRecorder
}

// newCollectorTelemetry resolves the collector's handles once per run. A
// nil registry yields the zero (no-op) struct.
func newCollectorTelemetry(reg *telemetry.Registry) collectorTelemetry {
	if reg == nil {
		return collectorTelemetry{}
	}
	return collectorTelemetry{
		iterations:          reg.Counter(MetricIterations),
		iterationsSkipped:   reg.Counter(MetricIterationsSkipped),
		probes:              reg.Counter(MetricProbes),
		retries:             reg.Counter(MetricRetries),
		samples:             reg.Counter(MetricSamples),
		breakerSkips:        reg.Counter(MetricBreakerSkips),
		breakerOpens:        reg.Counter(MetricBreakerOpens),
		failures:            reg.Counter(MetricProbeFailures),
		breakerOpenMachines: reg.Gauge(MetricBreakerOpenMachines),
		probesInflight:      reg.Gauge(MetricProbesInflight),
		probeDuration:       reg.Histogram(MetricProbeDuration, nil),
		iterationDuration:   reg.Histogram(MetricIterationDuration, nil),
		spans:               reg.Spans(),
	}
}

// span records one probe-level span. The early nil check matters: when
// telemetry is off we must not even build the span (err.Error() and the
// Span literal's string headers would be the only allocations on the
// probe path).
func (t *collectorTelemetry) span(machine string, iter, attempt int, lat time.Duration, outcome telemetry.Outcome, err error) {
	if t.spans == nil {
		return
	}
	sp := telemetry.Span{
		Machine: machine,
		Iter:    iter,
		Attempt: attempt,
		Latency: lat,
		Outcome: outcome,
	}
	if err != nil {
		sp.Err = err.Error()
	}
	t.spans.Record(sp)
}

// transportTelemetry holds the TCP transport's resolved handles; the zero
// value is telemetry-off.
type transportTelemetry struct {
	dials, dialErrors         *telemetry.Counter
	bytesRead, bytesWritten   *telemetry.Counter
	inflight                  *telemetry.Gauge
	dialDuration, probeDuration *telemetry.Histogram
}

func newTransportTelemetry(reg *telemetry.Registry) transportTelemetry {
	if reg == nil {
		return transportTelemetry{}
	}
	return transportTelemetry{
		dials:         reg.Counter(MetricTCPDials),
		dialErrors:    reg.Counter(MetricTCPDialErrors),
		bytesRead:     reg.Counter(MetricTCPBytesRead),
		bytesWritten:  reg.Counter(MetricTCPBytesWritten),
		inflight:      reg.Gauge(MetricTCPInflight),
		dialDuration:  reg.Histogram(MetricTCPDialDuration, nil),
		probeDuration: reg.Histogram(MetricTCPProbeDuration, nil),
	}
}

// agentTelemetry holds the probe agent's resolved handles; the zero value
// is telemetry-off.
type agentTelemetry struct {
	conns, connErrors, bytesWritten *telemetry.Counter
	inflight                        *telemetry.Gauge
}

func newAgentTelemetry(reg *telemetry.Registry) agentTelemetry {
	if reg == nil {
		return agentTelemetry{}
	}
	return agentTelemetry{
		conns:        reg.Counter(MetricAgentConns),
		connErrors:   reg.Counter(MetricAgentConnErrors),
		bytesWritten: reg.Counter(MetricAgentBytesWritten),
		inflight:     reg.Gauge(MetricAgentInflight),
	}
}

// sinkTelemetry holds the dataset sink's resolved handles; the zero value
// is telemetry-off.
type sinkTelemetry struct {
	samples, parseErrors, iterations *telemetry.Counter
	spans                            *telemetry.SpanRecorder
}

func newSinkTelemetry(reg *telemetry.Registry) sinkTelemetry {
	if reg == nil {
		return sinkTelemetry{}
	}
	return sinkTelemetry{
		samples:     reg.Counter(MetricSinkSamples),
		parseErrors: reg.Counter(MetricSinkParseErrors),
		iterations:  reg.Counter(MetricSinkIterations),
		spans:       reg.Spans(),
	}
}
