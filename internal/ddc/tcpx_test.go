package ddc

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"winlab/internal/machine"
	"winlab/internal/probe"
)

// lockedSource guards a machine map for concurrent agent access.
type lockedSource struct {
	mu  sync.Mutex
	ms  map[string]*machine.Machine
	now time.Time
}

func (s *lockedSource) Snapshot(id string, _ time.Time) (machine.Snapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.ms[id]
	if !ok {
		return machine.Snapshot{}, false
	}
	return m.Snapshot(s.now)
}

func newTCPFixture(t *testing.T) (*lockedSource, *TCPExecutor, func()) {
	t.Helper()
	src := &lockedSource{ms: map[string]*machine.Machine{}, now: t0.Add(time.Hour)}
	for _, id := range []string{"M1", "M2"} {
		m := newMachine(id)
		m.PowerOn(t0)
		src.ms[id] = m
	}
	// M2 is powered off: unreachable.
	src.ms["M2"].PowerOff(t0.Add(30 * time.Minute))

	agent := &Agent{Source: src, Now: func() time.Time { return src.now }}
	addr, err := agent.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	exec := NewTCPExecutor()
	exec.Timeout = 2 * time.Second
	exec.Register("M1", addr)
	exec.Register("M2", addr)
	return src, exec, func() { _ = agent.Close() }
}

func TestTCPProbeSuccess(t *testing.T) {
	_, exec, cleanup := newTCPFixture(t)
	defer cleanup()
	out, err := exec.Exec("M1")
	if err != nil {
		t.Fatal(err)
	}
	sn, err := probe.Parse(out)
	if err != nil {
		t.Fatalf("unparseable report over TCP: %v", err)
	}
	if sn.ID != "M1" || sn.Uptime != time.Hour {
		t.Errorf("parsed %+v", sn)
	}
}

func TestTCPProbeUnreachableMachine(t *testing.T) {
	_, exec, cleanup := newTCPFixture(t)
	defer cleanup()
	_, err := exec.Exec("M2")
	if !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v, want ErrUnreachable", err)
	}
}

func TestTCPProbeUnregistered(t *testing.T) {
	_, exec, cleanup := newTCPFixture(t)
	defer cleanup()
	if _, err := exec.Exec("M9"); !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v", err)
	}
}

func TestTCPProbeDeadAgent(t *testing.T) {
	exec := NewTCPExecutor()
	exec.Timeout = 500 * time.Millisecond
	// A listener we immediately close: connection refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	exec.Register("M1", addr)
	if _, err := exec.Exec("M1"); !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v", err)
	}
}

func TestAgentRejectsBadRequest(t *testing.T) {
	_, exec, cleanup := newTCPFixture(t)
	defer cleanup()
	// Reach into the registry for the address.
	exec.mu.RLock()
	addr := exec.addrs["M1"]
	exec.mu.RUnlock()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GIMME\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	n, _ := conn.Read(buf)
	if !strings.HasPrefix(string(buf[:n]), "ERR") {
		t.Errorf("agent reply to bad request: %q", buf[:n])
	}
}

func TestTCPConcurrentProbes(t *testing.T) {
	_, exec, cleanup := newTCPFixture(t)
	defer cleanup()
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := exec.Exec("M1")
			if err != nil {
				errs <- err
				return
			}
			if _, err := probe.Parse(out); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestWallCollectorAgainstTCP(t *testing.T) {
	_, exec, cleanup := newTCPFixture(t)
	defer cleanup()
	sink := NewDatasetSink(t0, t0.AddDate(0, 0, 1), time.Millisecond, nil)
	coll := &WallCollector{
		Cfg:  Config{Machines: []string{"M1", "M2"}, Period: time.Millisecond},
		Exec: exec,
		Post: sink.Post,
	}
	coll.OnIteration = sink.OnIteration
	st, err := coll.Run(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations != 3 || st.Attempts != 6 || st.Samples != 3 {
		t.Errorf("stats = %+v", st)
	}
	ds, err := sink.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Samples) != 3 || len(ds.Iterations) != 3 {
		t.Errorf("dataset: %d samples, %d iterations", len(ds.Samples), len(ds.Iterations))
	}
	if sink.ParseErrors != 0 {
		t.Errorf("parse errors = %d", sink.ParseErrors)
	}
}

func TestWallCollectorStop(t *testing.T) {
	_, exec, cleanup := newTCPFixture(t)
	defer cleanup()
	stop := make(chan struct{})
	close(stop)
	start := time.Now()
	st, err := (&WallCollector{
		Cfg:  Config{Machines: []string{"M1"}, Period: time.Hour},
		Exec: exec,
	}).Run(5, stop)
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations != 1 {
		t.Errorf("iterations = %d, want 1 (stopped)", st.Iterations)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("stop did not interrupt the sleep")
	}
}

func TestWallCollectorBadConfig(t *testing.T) {
	if _, err := (&WallCollector{Cfg: Config{}}).Run(1, nil); err == nil {
		t.Error("bad config accepted")
	}
}

func TestWallCollectorConcurrentWorkers(t *testing.T) {
	_, exec, cleanup := newTCPFixture(t)
	defer cleanup()
	sink := NewDatasetSink(t0, t0.AddDate(0, 0, 1), time.Millisecond, nil)
	coll := &WallCollector{
		Cfg:     Config{Machines: []string{"M1", "M2", "M1", "M2"}, Period: time.Millisecond},
		Exec:    exec,
		Post:    sink.Post,
		Workers: 4,
	}
	st, err := coll.Run(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Attempts != 8 || st.Samples != 4 { // M1 up twice per iteration
		t.Errorf("stats = %+v", st)
	}
	ds, err := sink.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Samples) != 4 || sink.ParseErrors != 0 {
		t.Errorf("samples = %d, parse errors = %d", len(ds.Samples), sink.ParseErrors)
	}
}

// rawProbeServer runs a hand-rolled server that consumes the request line
// and answers with respond — for exercising the client against framed,
// legacy, and adversarial peers.
func rawProbeServer(t *testing.T, respond func(conn net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				_, _ = bufio.NewReader(c).ReadString('\n')
				respond(c)
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestTCPAdversarialReportNotMisparsed is the regression test for the
// prefix-sniffing protocol bug: a healthy machine whose report body begins
// with "ERR " must be returned as data, not booked as unreachable.
func TestTCPAdversarialReportNotMisparsed(t *testing.T) {
	body := "ERR is a perfectly fine way to start a report\nline2\n"
	addr := rawProbeServer(t, func(c net.Conn) {
		_, _ = io.WriteString(c, "OK\n"+body)
	})
	exec := NewTCPExecutor()
	exec.Timeout = 2 * time.Second
	exec.Register("M1", addr)
	out, err := exec.Exec("M1")
	if err != nil {
		t.Fatalf("adversarial report misparsed as failure: %v", err)
	}
	if string(out) != body {
		t.Errorf("report body mangled: %q", out)
	}
}

func TestTCPLegacyUnframedCompat(t *testing.T) {
	// A pre-framing agent sends the report with no status line; the compat
	// read path must still deliver it verbatim.
	m := newMachine("M1")
	m.PowerOn(t0)
	sn, _ := m.Snapshot(t0.Add(time.Hour))
	report := probe.Render(sn)
	addr := rawProbeServer(t, func(c net.Conn) {
		_, _ = c.Write(report)
	})
	exec := NewTCPExecutor()
	exec.Timeout = 2 * time.Second
	exec.Register("M1", addr)
	out, err := exec.Exec("M1")
	if err != nil {
		t.Fatalf("legacy report rejected: %v", err)
	}
	if !bytes.Equal(out, report) {
		t.Errorf("legacy report altered:\n got %q\nwant %q", out, report)
	}
	if _, err := probe.Parse(out); err != nil {
		t.Errorf("legacy report unparseable: %v", err)
	}

	// Legacy error responses still surface as unreachable.
	addr2 := rawProbeServer(t, func(c net.Conn) {
		_, _ = io.WriteString(c, "ERR unreachable\n")
	})
	exec.Register("M2", addr2)
	if _, err := exec.Exec("M2"); !errors.Is(err, ErrUnreachable) {
		t.Errorf("legacy ERR line err = %v", err)
	}
}

func TestAgentTimeoutConfigurable(t *testing.T) {
	src := &lockedSource{ms: map[string]*machine.Machine{}, now: t0}
	agent := &Agent{Source: src, Timeout: 100 * time.Millisecond}
	addr, err := agent.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send nothing: the agent must give up after its (configured, not the
	// default 10 s) deadline and close the connection.
	start := time.Now()
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("agent answered an empty request")
	}
	if el := time.Since(start); el > 3*time.Second {
		t.Errorf("agent held the idle connection for %v; Timeout not applied", el)
	}
}

// TestAgentCloseNotReportedAsServeError is the regression test for
// Listen's silently-discarded Serve error: the error path is now plumbed,
// and a clean Close must NOT be reported through it.
func TestAgentCloseNotReportedAsServeError(t *testing.T) {
	m := newMachine("M1")
	m.PowerOn(t0)
	src := &lockedSource{ms: map[string]*machine.Machine{"M1": m}, now: t0.Add(time.Hour)}

	var reported int32
	agent := &Agent{
		Source:       src,
		Now:          func() time.Time { return src.now },
		OnServeError: func(error) { atomic.AddInt32(&reported, 1) },
	}
	addr, err := agent.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	exec := NewTCPExecutor()
	exec.Timeout = 2 * time.Second
	exec.Register("M1", addr)
	if _, err := exec.Exec("M1"); err != nil {
		t.Fatalf("probe before close failed: %v", err)
	}
	if err := agent.Close(); err != nil {
		t.Fatal(err)
	}
	// Give the background Serve goroutine time to observe the close.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if _, err := net.Dial("tcp", addr); err != nil {
			break // listener is really gone
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	if n := atomic.LoadInt32(&reported); n != 0 {
		t.Errorf("clean Close reported as Serve error %d times", n)
	}
	if err := agent.ServeError(); err != nil {
		t.Errorf("ServeError after clean close = %v", err)
	}
}

// orderedSlowExec answers with per-machine delays so concurrent probes
// complete out of list order; it is safe for concurrent use.
type orderedSlowExec struct {
	delays map[string]time.Duration
	up     map[string]bool
}

func (s *orderedSlowExec) Exec(id string) ([]byte, error) {
	time.Sleep(s.delays[id])
	if !s.up[id] {
		return nil, ErrUnreachable
	}
	return []byte("report:" + id), nil
}

// TestWallCollectorWorkersAccounting pins the concurrent sweep's
// contract: per-iteration Attempts/Samples accounting is exact and the
// post-collect hook runs serially, in machine order, even though probe
// completions are deliberately inverted. Run under -race.
func TestWallCollectorWorkersAccounting(t *testing.T) {
	machines := []string{"M1", "M2", "M3", "M4"}
	exec := &orderedSlowExec{
		// M1 slowest, M4 fastest: completion order is the reverse of
		// machine order.
		delays: map[string]time.Duration{
			"M1": 40 * time.Millisecond, "M2": 25 * time.Millisecond,
			"M3": 10 * time.Millisecond, "M4": 0,
		},
		up: map[string]bool{"M1": true, "M2": true, "M4": true}, // M3 down
	}
	var inPost int32
	var order []string
	var iterInfos []IterationInfo
	coll := &WallCollector{
		Cfg:     Config{Machines: machines, Period: time.Millisecond},
		Exec:    exec,
		Workers: 4,
		Post: func(iter int, id string, out []byte, err error) {
			if atomic.AddInt32(&inPost, 1) != 1 {
				t.Error("Post ran concurrently")
			}
			defer atomic.AddInt32(&inPost, -1)
			order = append(order, fmt.Sprintf("%d/%s", iter, id))
		},
		OnIteration: func(info IterationInfo) { iterInfos = append(iterInfos, info) },
	}
	const iters = 3
	st, err := coll.Run(iters, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Attempts != iters*4 || st.Samples != iters*3 {
		t.Errorf("stats = %+v", st)
	}
	if len(iterInfos) != iters {
		t.Fatalf("OnIteration fired %d times", len(iterInfos))
	}
	for _, info := range iterInfos {
		if info.Attempted != 4 || info.Responded != 3 || info.Probes != 4 || info.Retries != 0 {
			t.Errorf("iteration %d info = %+v", info.Iter, info)
		}
	}
	if len(order) != iters*4 {
		t.Fatalf("Post fired %d times", len(order))
	}
	for i, got := range order {
		want := fmt.Sprintf("%d/%s", i/4, machines[i%4])
		if got != want {
			t.Fatalf("Post order[%d] = %s, want %s (full: %v)", i, got, want, order)
		}
	}
	if m3 := st.Machines["M3"]; m3.Failures != iters || m3.ConsecFails != iters {
		t.Errorf("M3 health = %+v", m3)
	}
}

func TestConcurrentMatchesSequential(t *testing.T) {
	_, exec, cleanup := newTCPFixture(t)
	defer cleanup()
	run := func(workers int) Stats {
		st, err := (&WallCollector{
			Cfg:     Config{Machines: []string{"M1", "M2"}, Period: time.Millisecond},
			Exec:    exec,
			Workers: workers,
		}).Run(3, nil)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	seq := run(1)
	par := run(8)
	if seq.Samples != par.Samples || seq.Attempts != par.Attempts {
		t.Errorf("sequential %+v != concurrent %+v", seq, par)
	}
}
