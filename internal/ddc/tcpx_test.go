package ddc

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"winlab/internal/machine"
	"winlab/internal/probe"
)

// lockedSource guards a machine map for concurrent agent access.
type lockedSource struct {
	mu  sync.Mutex
	ms  map[string]*machine.Machine
	now time.Time
}

func (s *lockedSource) Snapshot(id string, _ time.Time) (machine.Snapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.ms[id]
	if !ok {
		return machine.Snapshot{}, false
	}
	return m.Snapshot(s.now)
}

func newTCPFixture(t *testing.T) (*lockedSource, *TCPExecutor, func()) {
	t.Helper()
	src := &lockedSource{ms: map[string]*machine.Machine{}, now: t0.Add(time.Hour)}
	for _, id := range []string{"M1", "M2"} {
		m := newMachine(id)
		m.PowerOn(t0)
		src.ms[id] = m
	}
	// M2 is powered off: unreachable.
	src.ms["M2"].PowerOff(t0.Add(30 * time.Minute))

	agent := &Agent{Source: src, Now: func() time.Time { return src.now }}
	addr, err := agent.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	exec := NewTCPExecutor()
	exec.Timeout = 2 * time.Second
	exec.Register("M1", addr)
	exec.Register("M2", addr)
	return src, exec, func() { _ = agent.Close() }
}

func TestTCPProbeSuccess(t *testing.T) {
	_, exec, cleanup := newTCPFixture(t)
	defer cleanup()
	out, err := exec.Exec("M1")
	if err != nil {
		t.Fatal(err)
	}
	sn, err := probe.Parse(out)
	if err != nil {
		t.Fatalf("unparseable report over TCP: %v", err)
	}
	if sn.ID != "M1" || sn.Uptime != time.Hour {
		t.Errorf("parsed %+v", sn)
	}
}

func TestTCPProbeUnreachableMachine(t *testing.T) {
	_, exec, cleanup := newTCPFixture(t)
	defer cleanup()
	_, err := exec.Exec("M2")
	if !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v, want ErrUnreachable", err)
	}
}

func TestTCPProbeUnregistered(t *testing.T) {
	_, exec, cleanup := newTCPFixture(t)
	defer cleanup()
	if _, err := exec.Exec("M9"); !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v", err)
	}
}

func TestTCPProbeDeadAgent(t *testing.T) {
	exec := NewTCPExecutor()
	exec.Timeout = 500 * time.Millisecond
	// A listener we immediately close: connection refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	exec.Register("M1", addr)
	if _, err := exec.Exec("M1"); !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v", err)
	}
}

func TestAgentRejectsBadRequest(t *testing.T) {
	_, exec, cleanup := newTCPFixture(t)
	defer cleanup()
	// Reach into the registry for the address.
	exec.mu.RLock()
	addr := exec.addrs["M1"]
	exec.mu.RUnlock()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GIMME\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	n, _ := conn.Read(buf)
	if !strings.HasPrefix(string(buf[:n]), "ERR") {
		t.Errorf("agent reply to bad request: %q", buf[:n])
	}
}

func TestTCPConcurrentProbes(t *testing.T) {
	_, exec, cleanup := newTCPFixture(t)
	defer cleanup()
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := exec.Exec("M1")
			if err != nil {
				errs <- err
				return
			}
			if _, err := probe.Parse(out); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestWallCollectorAgainstTCP(t *testing.T) {
	_, exec, cleanup := newTCPFixture(t)
	defer cleanup()
	sink := NewDatasetSink(t0, t0.AddDate(0, 0, 1), time.Millisecond, nil)
	coll := &WallCollector{
		Cfg:  Config{Machines: []string{"M1", "M2"}, Period: time.Millisecond},
		Exec: exec,
		Post: sink.Post,
	}
	coll.OnIteration = sink.OnIteration
	st, err := coll.Run(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations != 3 || st.Attempts != 6 || st.Samples != 3 {
		t.Errorf("stats = %+v", st)
	}
	ds, err := sink.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Samples) != 3 || len(ds.Iterations) != 3 {
		t.Errorf("dataset: %d samples, %d iterations", len(ds.Samples), len(ds.Iterations))
	}
	if sink.ParseErrors != 0 {
		t.Errorf("parse errors = %d", sink.ParseErrors)
	}
}

func TestWallCollectorStop(t *testing.T) {
	_, exec, cleanup := newTCPFixture(t)
	defer cleanup()
	stop := make(chan struct{})
	close(stop)
	start := time.Now()
	st, err := (&WallCollector{
		Cfg:  Config{Machines: []string{"M1"}, Period: time.Hour},
		Exec: exec,
	}).Run(5, stop)
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations != 1 {
		t.Errorf("iterations = %d, want 1 (stopped)", st.Iterations)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("stop did not interrupt the sleep")
	}
}

func TestWallCollectorBadConfig(t *testing.T) {
	if _, err := (&WallCollector{Cfg: Config{}}).Run(1, nil); err == nil {
		t.Error("bad config accepted")
	}
}

func TestWallCollectorConcurrentWorkers(t *testing.T) {
	_, exec, cleanup := newTCPFixture(t)
	defer cleanup()
	sink := NewDatasetSink(t0, t0.AddDate(0, 0, 1), time.Millisecond, nil)
	coll := &WallCollector{
		Cfg:     Config{Machines: []string{"M1", "M2", "M1", "M2"}, Period: time.Millisecond},
		Exec:    exec,
		Post:    sink.Post,
		Workers: 4,
	}
	st, err := coll.Run(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Attempts != 8 || st.Samples != 4 { // M1 up twice per iteration
		t.Errorf("stats = %+v", st)
	}
	ds, err := sink.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Samples) != 4 || sink.ParseErrors != 0 {
		t.Errorf("samples = %d, parse errors = %d", len(ds.Samples), sink.ParseErrors)
	}
}

func TestConcurrentMatchesSequential(t *testing.T) {
	_, exec, cleanup := newTCPFixture(t)
	defer cleanup()
	run := func(workers int) Stats {
		st, err := (&WallCollector{
			Cfg:     Config{Machines: []string{"M1", "M2"}, Period: time.Millisecond},
			Exec:    exec,
			Workers: workers,
		}).Run(3, nil)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	seq := run(1)
	par := run(8)
	if seq.Samples != par.Samples || seq.Attempts != par.Attempts {
		t.Errorf("sequential %+v != concurrent %+v", seq, par)
	}
}
