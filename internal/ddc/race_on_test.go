//go:build race

package ddc

// raceEnabled reports whether the test binary was built with the race
// detector; see race_off_test.go.
const raceEnabled = true
