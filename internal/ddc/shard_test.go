package ddc

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"winlab/internal/machine"
	"winlab/internal/sim"
	"winlab/internal/trace"
)

// TestPartitionNProperty: for every fleet size and shard count
// (including N > machines and ragged splits), the partition covers the
// fleet exactly once — concatenation equals the input, no part empty,
// and part sizes differ by at most one.
func TestPartitionNProperty(t *testing.T) {
	for size := 0; size <= 20; size++ {
		ids := make([]string, size)
		for i := range ids {
			ids[i] = fmt.Sprintf("m%02d", i)
		}
		for n := 1; n <= 16; n++ {
			parts := PartitionN(ids, n)
			if size == 0 {
				if parts != nil {
					t.Fatalf("size 0 n %d: non-nil partition", n)
				}
				continue
			}
			want := n
			if want > size {
				want = size
			}
			if len(parts) != want {
				t.Fatalf("size %d n %d: %d parts, want %d", size, n, len(parts), want)
			}
			var concat []string
			min, max := size, 0
			for _, p := range parts {
				if len(p) == 0 {
					t.Fatalf("size %d n %d: empty part", size, n)
				}
				if len(p) < min {
					min = len(p)
				}
				if len(p) > max {
					max = len(p)
				}
				concat = append(concat, p...)
			}
			if !reflect.DeepEqual(concat, ids) {
				t.Fatalf("size %d n %d: concatenation is not the fleet: %v", size, n, concat)
			}
			if max-min > 1 {
				t.Fatalf("size %d n %d: ragged beyond one (%d..%d)", size, n, min, max)
			}
		}
	}
}

// TestPartitionLabAlignedProperty: same exactly-once coverage, plus the
// lab-alignment contract — no contiguous lab run is split across parts.
func TestPartitionLabAlignedProperty(t *testing.T) {
	// Lab layouts: runs of machines per lab, including degenerate shapes.
	layouts := [][]int{
		{1}, {5}, {1, 1, 1}, {3, 1, 4, 1, 5}, {10, 1, 1}, {1, 1, 10},
		{2, 2, 2, 2, 2, 2, 2, 2}, {7, 7, 7}, {1, 2, 3, 4, 5, 6},
	}
	for li, layout := range layouts {
		var infos []trace.MachineInfo
		for lab, count := range layout {
			for i := 0; i < count; i++ {
				infos = append(infos, trace.MachineInfo{
					ID:  fmt.Sprintf("l%02d-m%02d", lab, i),
					Lab: fmt.Sprintf("L%02d", lab),
				})
			}
		}
		for n := 1; n <= 16; n++ {
			parts := PartitionLabAligned(infos, n)
			if len(parts) == 0 || len(parts) > n {
				t.Fatalf("layout %d n %d: %d parts", li, n, len(parts))
			}
			var concat []trace.MachineInfo
			labPart := map[string]int{}
			for pi, p := range parts {
				if len(p) == 0 {
					t.Fatalf("layout %d n %d: empty part", li, n)
				}
				concat = append(concat, p...)
				for _, mi := range p {
					if prev, ok := labPart[mi.Lab]; ok && prev != pi {
						t.Fatalf("layout %d n %d: lab %s split across parts %d and %d", li, n, mi.Lab, prev, pi)
					}
					labPart[mi.Lab] = pi
				}
			}
			if !reflect.DeepEqual(concat, infos) {
				t.Fatalf("layout %d n %d: concatenation is not the fleet", li, n)
			}
			if n >= len(layout) && len(parts) != len(layout) {
				t.Fatalf("layout %d n %d: %d parts, want one per lab (%d)", li, n, len(parts), len(layout))
			}
		}
	}
}

// shardedFixtureFleet builds the same 3-machine fleet as
// runSimCollection: M1/M3 up, M2 never powered on.
func shardedFixtureFleet() multiSource {
	src := multiSource{ms: map[string]*machine.Machine{}}
	for _, id := range []string{"M1", "M3"} {
		m := newMachine(id)
		m.PowerOn(t0.Add(-time.Hour))
		src.ms[id] = m
	}
	src.ms["M2"] = newMachine("M2")
	return src
}

// TestShardedCollectorMatchesSerial is the tentpole identity contract at
// unit scale: a 2-shard run over per-shard sinks, merged with
// MergeSharded, must reproduce the serial collector's dataset and
// fleet-wide stats, and SumShardStats must fold the per-shard stats back
// into the fleet-wide ones. (Seed-scale identity is asserted by
// internal/validate's shard arms.)
func TestShardedCollectorMatchesSerial(t *testing.T) {
	period := 15 * time.Minute
	end := t0.Add(46 * time.Minute)
	mkCfg := func() Config {
		// Twin deterministic latency schedules: latency depends only on
		// draw order, which the identity argument says is shared.
		okN, failN := 0, 0
		return Config{
			Period: period,
			LatencyOK: func() time.Duration {
				okN++
				return time.Second + time.Duration(okN)*7*time.Millisecond
			},
			LatencyFail: func() time.Duration {
				failN++
				return 4*time.Second + time.Duration(failN)*13*time.Millisecond
			},
			Outages: []Outage{{Start: t0.Add(15 * time.Minute), End: t0.Add(16 * time.Minute)}},
		}
	}

	// Serial reference.
	serialSrc := shardedFixtureFleet()
	serialEng := sim.New(t0)
	serialSink := NewDatasetSink(t0, end, period, nil)
	cfg := mkCfg()
	cfg.Machines = []string{"M1", "M2", "M3"}
	serial := &SimCollector{
		Cfg:  cfg,
		Exec: &Direct{Source: serialSrc, Now: serialEng.Now},
		Post: serialSink.Post,
	}
	serial.OnIteration = serialSink.OnIteration
	if err := serial.Install(serialEng, t0, end); err != nil {
		t.Fatal(err)
	}
	serialEng.Run()
	serialDS, serr := serialSink.Dataset()
	if serr != nil {
		t.Fatal(serr)
	}

	// Sharded run: M1+M2 on shard 0, M3 on shard 1, each with its own
	// sink; a global OnIteration collecting fleet-wide infos.
	shSrc := shardedFixtureFleet()
	shEng := sim.New(t0)
	sinks := []*DatasetSink{
		NewDatasetSink(t0, end, period, nil),
		NewDatasetSink(t0, end, period, nil),
	}
	var infos []IterationInfo
	coll := &ShardedCollector{
		Cfg:  mkCfg(),
		Exec: &Direct{Source: shSrc, Now: shEng.Now},
		Shards: []ShardSpec{
			{Machines: []string{"M1", "M2"}, Post: sinks[0].Post, OnIteration: sinks[0].OnIteration},
			{Machines: []string{"M3"}, Post: sinks[1].Post, OnIteration: sinks[1].OnIteration},
		},
		OnIteration: func(info IterationInfo) { infos = append(infos, info) },
	}
	if err := coll.Install(shEng, t0, end); err != nil {
		t.Fatal(err)
	}
	shEng.Run()
	coll.Finish()

	shardDS := make([]*trace.Dataset, len(sinks))
	for i, s := range sinks {
		ds, err := s.Dataset()
		if err != nil {
			t.Fatal(err)
		}
		shardDS[i] = ds
	}
	merged, err := trace.MergeSharded(shardDS...)
	if err != nil {
		t.Fatal(err)
	}
	serialDS.SortSamples()
	if len(merged.Samples) == 0 {
		t.Fatal("degenerate sharded run: no samples")
	}
	if !reflect.DeepEqual(merged.Samples, serialDS.Samples) {
		t.Error("merged shard samples differ from serial run")
	}
	if !reflect.DeepEqual(merged.Iterations, serialDS.Iterations) {
		t.Errorf("merged iterations differ:\nsharded %+v\nserial  %+v", merged.Iterations, serialDS.Iterations)
	}
	if !reflect.DeepEqual(coll.Stats(), serial.Stats()) {
		t.Errorf("stats differ:\nsharded %+v\nserial  %+v", coll.Stats(), serial.Stats())
	}
	if got := SumShardStats(coll.ShardStats()); !reflect.DeepEqual(got, coll.Stats()) {
		t.Errorf("SumShardStats != Stats:\nsum   %+v\ntotal %+v", got, coll.Stats())
	}
	// Global OnIteration saw every run iteration with fleet-wide counts.
	if len(infos) != serial.Stats().Iterations {
		t.Fatalf("global OnIteration fired %d times, want %d", len(infos), serial.Stats().Iterations)
	}
	for _, info := range infos {
		if info.Attempted != 3 || info.Responded != 2 {
			t.Errorf("iteration %d: attempted %d responded %d, want 3/2", info.Iter, info.Attempted, info.Responded)
		}
	}
}

// pureFake is a minimal PureSource: state is a pure function of
// (id, instant), so snapshots may run on any goroutine.
type pureFake struct{ down map[string]bool }

func (s pureFake) Snapshot(id string, at time.Time) (machine.Snapshot, bool) {
	if s.down[id] {
		return machine.Snapshot{}, false
	}
	return machine.Snapshot{
		Time: at, ID: id, Lab: "L01",
		CPUModel: "P4", CPUGHz: 2.4, RAMMB: 512, DiskGB: 74.5, Serial: "D-" + id,
		BootTime: t0.Add(-time.Hour), Uptime: at.Sub(t0.Add(-time.Hour)),
		CPUIdle: at.Sub(t0.Add(-time.Hour)) / 2, FreeDiskGB: 30,
		PowerCycles: 12, PowerOnHours: 400,
	}, true
}

func (s pureFake) Reachable(id string, at time.Time) bool { return !s.down[id] }

// TestPureDirectSharded drives the AtExecutor path (reachability decided
// on the scheduling chain, snapshot deferred to the shard goroutine) and
// checks it against the serial collector over the same pure source.
func TestPureDirectSharded(t *testing.T) {
	period := 15 * time.Minute
	end := t0.Add(46 * time.Minute)
	src := pureFake{down: map[string]bool{"M2": true}}
	ids := []string{"M1", "M2", "M3", "M4", "M5"}

	serialEng := sim.New(t0)
	serialSink := NewDatasetSink(t0, end, period, nil)
	serial := &SimCollector{
		Cfg:  Config{Machines: ids, Period: period},
		Exec: &Direct{Source: src, Now: serialEng.Now},
		Post: serialSink.Post,
	}
	serial.OnIteration = serialSink.OnIteration
	if err := serial.Install(serialEng, t0, end); err != nil {
		t.Fatal(err)
	}
	serialEng.Run()
	serialDS, err := serialSink.Dataset()
	if err != nil {
		t.Fatal(err)
	}

	shEng := sim.New(t0)
	parts := PartitionN(ids, 3)
	sinks := make([]*DatasetSink, len(parts))
	shards := make([]ShardSpec, len(parts))
	for i, p := range parts {
		sinks[i] = NewDatasetSink(t0, end, period, nil)
		shards[i] = ShardSpec{Machines: p, Post: sinks[i].Post, OnIteration: sinks[i].OnIteration}
	}
	coll := &ShardedCollector{
		Cfg:    Config{Period: period},
		Exec:   &PureDirect{Source: src, Now: shEng.Now},
		Shards: shards,
	}
	if err := coll.Install(shEng, t0, end); err != nil {
		t.Fatal(err)
	}
	shEng.Run()
	coll.Finish()

	shardDS := make([]*trace.Dataset, len(sinks))
	for i, s := range sinks {
		if shardDS[i], err = s.Dataset(); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := trace.MergeSharded(shardDS...)
	if err != nil {
		t.Fatal(err)
	}
	serialDS.SortSamples()
	if len(merged.Samples) != 4*serial.Stats().Iterations {
		t.Fatalf("sample count %d, want %d", len(merged.Samples), 4*serial.Stats().Iterations)
	}
	if !reflect.DeepEqual(merged.Samples, serialDS.Samples) {
		t.Error("PureDirect sharded samples differ from serial Direct run")
	}
	if !reflect.DeepEqual(merged.Iterations, serialDS.Iterations) {
		t.Error("PureDirect sharded iterations differ from serial Direct run")
	}
}

// TestShardedCollectorRejections pins the Install-time guard rails.
func TestShardedCollectorRejections(t *testing.T) {
	eng := sim.New(t0)
	end := t0.Add(time.Hour)

	// No shards.
	c := &ShardedCollector{Cfg: Config{Period: time.Minute}}
	if err := c.Install(eng, t0, end); err == nil {
		t.Error("no shards accepted")
	}

	// Duplicate machine across shards.
	c = &ShardedCollector{
		Cfg:  Config{Period: time.Minute},
		Exec: &Direct{Source: shardedFixtureFleet(), Now: eng.Now},
		Shards: []ShardSpec{
			{Machines: []string{"M1", "M2"}},
			{Machines: []string{"M2"}},
		},
	}
	err := c.Install(eng, t0, end)
	if err == nil || !strings.Contains(err.Error(), "M2") {
		t.Errorf("duplicate machine: err = %v", err)
	}

	// Synchronous-only executor (the fault injector's shape).
	c = &ShardedCollector{
		Cfg:    Config{Period: time.Minute},
		Exec:   syncOnlyExec{},
		Shards: []ShardSpec{{Machines: []string{"M1"}}},
	}
	if err := c.Install(eng, t0, end); err == nil {
		t.Error("synchronous-only executor accepted")
	}
}

type syncOnlyExec struct{}

func (syncOnlyExec) Exec(string) ([]byte, error) { return nil, ErrUnreachable }
