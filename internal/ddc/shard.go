package ddc

import (
	"fmt"
	"sync"
	"time"

	"winlab/internal/probe"
	"winlab/internal/sim"
	"winlab/internal/telemetry"
	"winlab/internal/trace"
)

// Sharded fleet collection. One coordinator still owns the probe clock —
// a single serial event chain on the engine schedules every probe at its
// exact simulated instant, in global machine order, drawing the same
// latencies the serial collector would — but the machines are
// partitioned across N shards, and everything downstream of scheduling
// (report rendering, parsing, sink commits) runs on one goroutine per
// shard against that shard's own sink. Each shard can then write an
// independent TBv1 segment file, which is what bounds per-shard memory:
// a shard holds 1/N of the fleet's samples, and trace.MergeSegments
// compacts the segments into the canonical fleet trace without
// materialising any of them.
//
// Identity argument (asserted by internal/validate's shard arms): the
// scheduling chain is byte-for-byte the serial collector's — same
// snapshot instants, same RNG draw order, same accounting via the shared
// accountProbe — so the sample streams are identical; only where the
// pure render/parse work executes moves. The per-shard sinks see their
// machines in the same relative order and at the same iteration
// boundaries as the fleet-wide sink would, so the merged dataset is
// sample-identical to the serial run.

// AtExecutor is the executor shape built for sharded scheduling: the
// scheduling step receives the probe's simulated instant explicitly and
// returns a render job that may run later on another goroutine. Unlike
// DeferredExecutor.Begin — which must capture the full machine snapshot
// at call time — a BeginAppendAt implementation backed by a pure
// (time-travel-queryable) source can defer even the snapshot to the
// render job, leaving only a reachability decision on the scheduling
// chain. That is what makes sharded collection scale: the serial chain
// does O(1) work per probe and the per-shard goroutines do the rest.
type AtExecutor interface {
	BeginAppendAt(machineID string, at time.Time) (AppendProbeJob, error)
}

// PureSource is a StateSource whose snapshots are pure functions of
// (machine, instant): Snapshot may be called from any goroutine, at any
// real time, for any simulated instant, and returns the same state.
// Reachable must agree with what Snapshot's ok result would be at the
// same instant. The simulated fleet does NOT qualify — machine.Machine
// advances internal counters on every Snapshot, so it must be probed on
// the engine thread via Direct — but arithmetically-derived sources
// (the gridscale harness) and replay sources do, and they are where the
// scale-out matters.
type PureSource interface {
	StateSource
	Reachable(machineID string, at time.Time) bool
}

// PureDirect is the Executor/AtExecutor over a PureSource: scheduling
// only asks Reachable (cheap, on the engine chain), and the returned job
// takes the snapshot and renders the report on whatever goroutine runs
// it — the honest model of a real deployment, where the probe executes
// on the remote machine, not on the coordinator.
type PureDirect struct {
	Source PureSource
	Now    func() time.Time
}

// Exec implements Executor for serial use of the same source.
func (d *PureDirect) Exec(machineID string) ([]byte, error) {
	sn, ok := d.Source.Snapshot(machineID, d.Now())
	if !ok {
		return nil, ErrUnreachable
	}
	return probe.Render(sn), nil
}

// BeginAppendAt implements AtExecutor. If the source breaks the purity
// contract (Reachable true but Snapshot later says no), the job renders
// an empty report, which the sink books as a parse error — visible, not
// silently dropped.
func (d *PureDirect) BeginAppendAt(machineID string, at time.Time) (AppendProbeJob, error) {
	if !d.Source.Reachable(machineID, at) {
		return nil, ErrUnreachable
	}
	src := d.Source
	return func(dst []byte) []byte {
		sn, ok := src.Snapshot(machineID, at)
		if !ok {
			return dst
		}
		return probe.AppendRender(dst, sn)
	}, nil
}

// PartitionN splits ids into at most n contiguous, non-empty parts whose
// concatenation is ids — an even split, with the first len(ids)%n parts
// one element longer. n is clamped to [1, len(ids)].
func PartitionN(ids []string, n int) [][]string {
	if len(ids) == 0 {
		return nil
	}
	if n < 1 {
		n = 1
	}
	if n > len(ids) {
		n = len(ids)
	}
	out := make([][]string, 0, n)
	base, extra := len(ids)/n, len(ids)%n
	at := 0
	for i := 0; i < n; i++ {
		size := base
		if i < extra {
			size++
		}
		out = append(out, ids[at:at+size])
		at += size
	}
	return out
}

// PartitionLabAligned splits a machine catalogue into at most n
// contiguous, non-empty parts without splitting any contiguous run of
// one lab across parts. Lab alignment is what keeps the per-shard
// anomaly-detector view coherent: detectors aggregate per lab, and with
// every lab wholly inside one shard, that shard's sink sees the lab's
// samples in exactly the serial order (see experiment's sharded path).
// Parts are balanced greedily toward machines/n, one lab run at a time;
// the concatenation of the parts is the input slice.
func PartitionLabAligned(infos []trace.MachineInfo, n int) [][]trace.MachineInfo {
	if len(infos) == 0 {
		return nil
	}
	if n < 1 {
		n = 1
	}
	// Contiguous lab runs — the indivisible units.
	type group struct{ start, end int }
	var groups []group
	for i := 0; i < len(infos); {
		j := i + 1
		for j < len(infos) && infos[j].Lab == infos[i].Lab {
			j++
		}
		groups = append(groups, group{i, j})
		i = j
	}
	if n > len(groups) {
		n = len(groups)
	}
	out := make([][]trace.MachineInfo, 0, n)
	g, remaining := 0, len(infos)
	for part := 0; part < n && g < len(groups); part++ {
		partsLeft := n - part
		fair := (remaining + partsLeft - 1) / partsLeft
		start := groups[g].start
		size := 0
		for g < len(groups) {
			gs := groups[g].end - groups[g].start
			if size > 0 {
				// Leave at least one group for each later part, and only
				// keep taking while the overshoot past the fair share is no
				// worse than the undershoot of stopping here.
				if len(groups)-g <= partsLeft-1 || size >= fair || size+gs-fair > fair-size {
					break
				}
			}
			size += gs
			g++
		}
		out = append(out, infos[start:start+size])
		remaining -= size
	}
	return out
}

// ShardSpec is one shard's slice of the fleet and its private downstream
// hooks. Post and OnIteration are invoked on the shard's own goroutine —
// serially within the shard, concurrently with other shards — so a
// per-shard DatasetSink needs no extra locking, but hooks shared across
// shards must synchronise themselves.
type ShardSpec struct {
	Machines []string

	// Post receives every probe outcome of this shard's machines, in
	// machine order within each iteration (typically a per-shard
	// DatasetSink.Post). The stdout lifetime contract is PostCollect's:
	// the buffer is reused for the next report.
	Post PostCollect

	// OnIteration, when set, fires after the shard finishes committing an
	// iteration, with shard-local Attempted/Responded counts.
	OnIteration IterationFunc
}

// shardBatch carries one iteration's scheduled jobs for one shard from
// the engine chain to the shard goroutine.
type shardBatch struct {
	iter       int
	start, end time.Time
	responded  int // within this shard
	jobs       []AppendProbeJob
	errs       []error
	wg         *sync.WaitGroup // global iteration barrier; nil when unused
}

// ShardedCollector runs the collection loop with the fleet partitioned
// across shards (see the package comment at the top of this file for the
// architecture and the identity argument). The executor must support a
// deferred scheduling step: AtExecutor (preferred — O(1) scheduling),
// AppendDeferredExecutor, or DeferredExecutor. Plain synchronous
// executors — including FaultExecutor, whose injected faults are
// decided at execution time — are rejected at Install.
type ShardedCollector struct {
	// Cfg supplies Period, latencies and outages; Cfg.Machines is
	// ignored — the fleet is the concatenation of the shard machine
	// lists, in shard order.
	Cfg    Config
	Exec   Executor
	Shards []ShardSpec

	// OnIteration, when set, fires after *all* shards have committed an
	// iteration, with fleet-wide counts — the barrier serialises
	// iterations across shards, which per-shard hooks deliberately
	// don't. Runs on the engine goroutine.
	OnIteration IterationFunc

	// Telemetry mirrors the run into a metrics registry, fleet-wide:
	// one registry, the same counters and histograms the serial
	// collector would book (per-shard numbers live in ShardStats).
	Telemetry *telemetry.Registry

	// QueueDepth bounds how many iterations a shard may lag behind the
	// scheduler before the engine chain blocks on it (backpressure).
	// Zero means 2. Irrelevant when OnIteration is set, which already
	// barriers every iteration.
	QueueDepth int

	stats      Stats
	shardStats []Stats
	tel        collectorTelemetry

	machines []string // concatenation of shard machine lists
	shardOf  []int    // global machine index -> shard
	localOf  []int    // global machine index -> index within its shard
	begin    func(e *sim.Engine, id string) (AppendProbeJob, error)

	chans []chan *shardBatch
	done  sync.WaitGroup
	pool  sync.Pool
}

// Stats returns the fleet-wide run statistics — the same numbers the
// serial collector would report. Call after the engine run finishes.
func (c *ShardedCollector) Stats() Stats { return c.stats }

// ShardStats returns per-shard statistics. Attempts/Samples are
// shard-local; Iterations/Skipped are coordinator-level (every shard
// participates in every iteration) and repeat the fleet-wide values.
// SumShardStats folds them back into Stats().
func (c *ShardedCollector) ShardStats() []Stats {
	out := make([]Stats, len(c.shardStats))
	for i, s := range c.shardStats {
		s.Iterations = c.stats.Iterations
		s.Skipped = c.stats.Skipped
		out[i] = s
	}
	return out
}

// SumShardStats aggregates per-shard statistics into the fleet-wide
// view: additive counters sum, coordinator-level counters (Iterations,
// Skipped) are common to all shards and taken from the first. The
// validate suite asserts SumShardStats(ShardStats()) == Stats().
func SumShardStats(shards []Stats) Stats {
	var out Stats
	if len(shards) == 0 {
		return out
	}
	out.Iterations = shards[0].Iterations
	out.Skipped = shards[0].Skipped
	for _, s := range shards {
		out.Attempts += s.Attempts
		out.Samples += s.Samples
		out.Retries += s.Retries
		out.BreakerSkipped += s.BreakerSkipped
		out.BreakerOpens += s.BreakerOpens
	}
	return out
}

// Install validates the configuration, starts the shard goroutines and
// schedules the collection loop on the engine from start to end. The
// caller must call Finish after the engine run to drain and join the
// shards before reading sinks or stats.
func (c *ShardedCollector) Install(eng *sim.Engine, start, end time.Time) error {
	if len(c.Shards) == 0 {
		return fmt.Errorf("ddc: sharded collector with no shards")
	}
	total := 0
	for _, sh := range c.Shards {
		total += len(sh.Machines)
	}
	c.machines = make([]string, 0, total)
	c.shardOf = make([]int, 0, total)
	c.localOf = make([]int, 0, total)
	seen := make(map[string]int, total)
	for s, sh := range c.Shards {
		for l, id := range sh.Machines {
			if prev, dup := seen[id]; dup {
				return fmt.Errorf("ddc: machine %s assigned to shards %d and %d (shards must partition the fleet)", id, prev, s)
			}
			seen[id] = s
			c.machines = append(c.machines, id)
			c.shardOf = append(c.shardOf, s)
			c.localOf = append(c.localOf, l)
		}
	}
	cfg := c.Cfg
	cfg.Machines = c.machines
	if err := cfg.Validate(); err != nil {
		return err
	}

	switch x := c.Exec.(type) {
	case AtExecutor:
		c.begin = func(e *sim.Engine, id string) (AppendProbeJob, error) {
			return x.BeginAppendAt(id, e.Now())
		}
	case AppendDeferredExecutor:
		c.begin = func(_ *sim.Engine, id string) (AppendProbeJob, error) {
			return x.BeginAppend(id)
		}
	case DeferredExecutor:
		c.begin = func(_ *sim.Engine, id string) (AppendProbeJob, error) {
			pj, err := x.Begin(id)
			if pj == nil {
				return nil, err
			}
			return func(dst []byte) []byte { return pj() }, err
		}
	default:
		return fmt.Errorf("ddc: sharded collection needs a deferred-capable executor (AtExecutor, BeginAppend or Begin); %T only executes synchronously", c.Exec)
	}

	c.tel = newCollectorTelemetry(c.Telemetry)
	c.shardStats = make([]Stats, len(c.Shards))

	depth := c.QueueDepth
	if depth <= 0 {
		depth = 2
	}
	c.chans = make([]chan *shardBatch, len(c.Shards))
	for s := range c.Shards {
		ch := make(chan *shardBatch, depth)
		c.chans[s] = ch
		c.done.Add(1)
		go c.shardWorker(s, ch)
	}

	iter := 0
	for at := start; at.Before(end); at = at.Add(c.Cfg.Period) {
		at := at
		thisIter := iter
		iter++
		if c.Cfg.inOutage(at) {
			c.stats.Skipped++
			c.tel.iterationsSkipped.Inc()
			continue
		}
		eng.At(at, "ddc-iteration", func(e *sim.Engine) {
			c.runIteration(e, thisIter, at)
		})
	}
	return nil
}

// Finish drains the shard queues and joins the shard goroutines. Safe to
// call more than once. Until Finish returns, per-shard sinks may still
// be receiving commits.
func (c *ShardedCollector) Finish() {
	if c.chans == nil {
		return
	}
	for _, ch := range c.chans {
		close(ch)
	}
	c.chans = nil
	c.done.Wait()
}

// runIteration is the serial scheduling chain — the exact structure of
// the serial collector's deferred iteration (outage check already done
// in Install): one event per probe, each delayed by the previous probe's
// latency, booking accounting at the probe's scheduled instant. Jobs
// land in per-shard batches instead of one fleet-wide slice; the final
// event dispatches the batches to the shard goroutines.
func (c *ShardedCollector) runIteration(eng *sim.Engine, iter int, start time.Time) {
	c.stats.Iterations++
	c.tel.iterations.Inc()
	batches := make([]*shardBatch, len(c.Shards))
	for s := range batches {
		batches[s] = c.newBatch(len(c.Shards[s].Machines), iter, start)
	}
	var step func(e *sim.Engine, idx int)
	step = func(e *sim.Engine, idx int) {
		if idx >= len(c.machines) {
			c.dispatch(e, iter, start, batches)
			return
		}
		id := c.machines[idx]
		job, err := c.begin(e, id)
		s := c.shardOf[idx]
		b := batches[s]
		l := c.localOf[idx]
		b.jobs[l], b.errs[l] = job, err
		if err == nil {
			b.responded++
		}
		ss := &c.shardStats[s]
		ss.Attempts++
		if err == nil {
			ss.Samples++
		}
		lat := accountProbe(&c.Cfg, &c.stats, &c.tel, id, iter, err)
		e.After(lat, "ddc-probe", func(e2 *sim.Engine) { step(e2, idx+1) })
	}
	step(eng, 0)
}

// dispatch hands the iteration's batches to the shard goroutines. With a
// global OnIteration hook the engine chain waits for every shard to
// commit (the fleet-wide barrier); otherwise shards may pipeline up to
// QueueDepth iterations behind the scheduler.
func (c *ShardedCollector) dispatch(e *sim.Engine, iter int, start time.Time, batches []*shardBatch) {
	end := e.Now()
	c.tel.iterationDuration.Observe(end.Sub(start))
	responded := 0
	for _, b := range batches {
		responded += b.responded
	}
	var wg *sync.WaitGroup
	if c.OnIteration != nil {
		wg = &sync.WaitGroup{}
		wg.Add(len(batches))
	}
	for s, b := range batches {
		b.end = end
		b.wg = wg
		c.chans[s] <- b
	}
	if wg != nil {
		wg.Wait()
		c.OnIteration(IterationInfo{
			Iter: iter, Start: start, End: end,
			Attempted: len(c.machines), Responded: responded,
			Probes: len(c.machines),
		})
	}
}

// shardWorker is one shard's goroutine: render each job into the
// shard's reusable buffer, hand the report to the shard's Post, fire the
// shard's OnIteration — the downstream half of the serial collector's
// iteration, shard-locally.
func (c *ShardedCollector) shardWorker(s int, ch chan *shardBatch) {
	defer c.done.Done()
	sh := &c.Shards[s]
	rb := getReportBuf()
	defer putReportBuf(rb)
	for b := range ch {
		for i, job := range b.jobs {
			var out []byte
			if job != nil {
				out = job(rb.b[:0])
				rb.b = out[:0]
			}
			if sh.Post != nil {
				sh.Post(b.iter, sh.Machines[i], out, b.errs[i])
			}
		}
		if sh.OnIteration != nil {
			sh.OnIteration(IterationInfo{
				Iter: b.iter, Start: b.start, End: b.end,
				Attempted: len(sh.Machines), Responded: b.responded,
				Probes: len(sh.Machines),
			})
		}
		if b.wg != nil {
			b.wg.Done()
		}
		c.putBatch(b)
	}
}

// newBatch rents a batch sized for n jobs from the pool.
func (c *ShardedCollector) newBatch(n, iter int, start time.Time) *shardBatch {
	b, _ := c.pool.Get().(*shardBatch)
	if b == nil {
		b = &shardBatch{}
	}
	if cap(b.jobs) < n {
		b.jobs = make([]AppendProbeJob, n)
		b.errs = make([]error, n)
	} else {
		b.jobs = b.jobs[:n]
		b.errs = b.errs[:n]
		for i := range b.jobs {
			b.jobs[i], b.errs[i] = nil, nil
		}
	}
	b.iter, b.start, b.end = iter, start, time.Time{}
	b.responded, b.wg = 0, nil
	return b
}

func (c *ShardedCollector) putBatch(b *shardBatch) { c.pool.Put(b) }
