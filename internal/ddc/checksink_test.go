package ddc

import (
	"testing"
	"time"

	"winlab/internal/machine"
	"winlab/internal/probe"
	"winlab/internal/sim"
	"winlab/internal/telemetry"
	"winlab/internal/trace"
	"winlab/internal/trace/check"
)

// TestSinkCheckCleanCollection attaches the streaming checker to a real
// sim collection and asserts a healthy run yields a clean report with
// full coverage, and the telemetry counters to match.
func TestSinkCheckCleanCollection(t *testing.T) {
	src := multiSource{ms: map[string]*machine.Machine{}}
	for _, id := range []string{"M1", "M3"} {
		m := newMachine(id)
		m.PowerOn(t0.Add(-time.Hour))
		src.ms[id] = m
	}
	src.ms["M2"] = newMachine("M2") // never powered on: unreachable

	reg := telemetry.NewRegistry()
	eng := sim.New(t0)
	end := t0.Add(46 * time.Minute)
	sink := NewDatasetSink(t0, end, 15*time.Minute, nil)
	sc := AttachCheck(sink, check.Options{}, reg)
	coll := &SimCollector{
		Cfg: Config{
			Machines:    []string{"M1", "M2", "M3"},
			Period:      15 * time.Minute,
			LatencyOK:   func() time.Duration { return time.Second },
			LatencyFail: func() time.Duration { return 4 * time.Second },
		},
		Exec: &Direct{Source: src, Now: eng.Now},
		Post: sink.Post,
	}
	coll.OnIteration = sink.OnIteration
	if err := coll.Install(eng, t0, end); err != nil {
		t.Fatal(err)
	}
	eng.Run()

	ds, err := sink.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	r := sc.Report()
	if !r.OK() {
		for _, v := range r.Violations {
			t.Errorf("unexpected violation: %s", v)
		}
	}
	if r.Samples != len(ds.Samples) || r.Iterations != len(ds.Iterations) {
		t.Errorf("coverage %d/%d, dataset has %d/%d",
			r.Samples, r.Iterations, len(ds.Samples), len(ds.Iterations))
	}
	if err := sc.Err(); err != nil {
		t.Errorf("Err() = %v", err)
	}
	if got := reg.Counter(MetricSinkChecked).Value(); got != int64(len(ds.Samples)) {
		t.Errorf("%s = %d, want %d", MetricSinkChecked, got, len(ds.Samples))
	}
	if got := reg.Counter(MetricSinkViolations).Value(); got != 0 {
		t.Errorf("%s = %d, want 0", MetricSinkViolations, got)
	}
}

// TestSinkCheckFlagsCorruptReports feeds the sink a report whose
// per-boot uptime counter regresses and an iteration record whose
// response count cannot reconcile; the attached checker must flag both
// at commit time and bump the violation counter.
func TestSinkCheckFlagsCorruptReports(t *testing.T) {
	reg := telemetry.NewRegistry()
	sink := NewDatasetSink(t0, t0.Add(time.Hour), 15*time.Minute, nil)
	sc := AttachCheck(sink, check.Options{}, reg)

	boot := t0.Add(-time.Hour)
	sn := machine.Snapshot{
		ID: "M1", Lab: "L01", Time: t0.Add(5 * time.Second),
		CPUModel: "P4", CPUGHz: 2.4, RAMMB: 512, DiskGB: 74.5,
		BootTime: boot, Uptime: time.Hour, CPUIdle: 50 * time.Minute,
		FreeDiskGB: 30, PowerCycles: 4, PowerOnHours: 100,
		SentBytes: 1000, RecvBytes: 2000,
	}
	sink.Post(0, "M1", probe.Render(sn), nil)
	sink.OnIteration(IterationInfo{Iter: 0, Start: t0, End: t0.Add(10 * time.Second), Attempted: 1, Responded: 1})

	// Same boot, but uptime went backwards.
	sn.Time = t0.Add(15*time.Minute + 5*time.Second)
	sn.Uptime = 30 * time.Minute
	sink.Post(1, "M1", probe.Render(sn), nil)
	// And an iteration record claiming three responses for one sample.
	sink.OnIteration(IterationInfo{Iter: 1, Start: t0.Add(15 * time.Minute), End: t0.Add(16 * time.Minute), Attempted: 3, Responded: 3})

	r := sc.Report()
	if r.OK() {
		t.Fatal("corrupt commits not flagged")
	}
	kinds := map[check.Kind]bool{}
	for _, v := range r.Violations {
		kinds[v.Kind] = true
	}
	if !kinds[check.KindCounterRegression] {
		t.Errorf("no counter-regression violation; got %v", r.Violations)
	}
	if !kinds[check.KindResponseAccounting] {
		t.Errorf("no response-accounting violation; got %v", r.Violations)
	}
	if got := reg.Counter(MetricSinkViolations).Value(); got != int64(r.Total) {
		t.Errorf("%s = %d, want %d", MetricSinkViolations, got, r.Total)
	}
	if err := sc.Err(); err == nil {
		t.Error("Err() = nil on violating stream")
	}

	// Detach: further commits are no longer validated.
	sc.Detach()
	before := sc.Report().Total
	sn.Time = t0.Add(30*time.Minute + 5*time.Second)
	sn.Uptime = time.Minute // would be another regression
	sink.Post(2, "M1", probe.Render(sn), nil)
	if got := sc.Report().Total; got != before {
		t.Errorf("violations grew to %d after Detach (was %d)", got, before)
	}
}

// TestSinkCheckNilSafety pins the nil contract: attaching to a nil sink
// returns a nil handle, and every method on a nil handle is a safe
// no-op answering like a clean checker.
func TestSinkCheckNilSafety(t *testing.T) {
	sc := AttachCheck(nil, check.Options{}, nil)
	if sc != nil {
		t.Fatalf("AttachCheck(nil) = %v", sc)
	}
	sc.Detach()
	if !sc.Report().OK() {
		t.Error("nil Report() not OK")
	}
	if err := sc.Err(); err != nil {
		t.Errorf("nil Err() = %v", err)
	}
}

// TestSinkCheckDetachedAllocFree is the acceptance guard for the
// disabled path: a sink without an attached checker commits samples
// with zero allocations per probe (the one extra nil check must not
// cost an allocation), matching the TestNilTelemetryAllocFree contract
// for the rest of the probe path.
func TestSinkCheckDetachedAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun counts race-detector bookkeeping allocations")
	}
	sink := NewDatasetSink(t0, t0.Add(time.Hour), 15*time.Minute, nil)
	// Pre-grow the sample slice so append growth does not pollute the
	// measurement (growth is amortised-free in steady state).
	func() {
		sink.mu.Lock()
		defer sink.mu.Unlock()
		sink.d.Samples = make([]trace.Sample, 0, 4096)
	}()

	m := newMachine("M1")
	m.PowerOn(t0)
	report := probe.Render(mustSnapshot(t, m, t0.Add(10*time.Minute)))
	iter := 0
	if allocs := testing.AllocsPerRun(200, func() {
		sink.Post(iter, "M1", report, nil)
	}); allocs != 0 {
		t.Errorf("detached sink Post allocates %.1f objects/run, want 0", allocs)
	}
}

func mustSnapshot(t *testing.T, m *machine.Machine, at time.Time) machine.Snapshot {
	t.Helper()
	sn, ok := m.Snapshot(at)
	if !ok {
		t.Fatal("machine unreachable")
	}
	return sn
}
