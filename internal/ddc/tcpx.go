package ddc

import (
	"context"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"winlab/internal/probe"
	"winlab/internal/rng"
	"winlab/internal/telemetry"
)

// This file implements a real network transport for the collector: probe
// agents that serve W32Probe reports over TCP, and a TCPExecutor that the
// coordinator uses in place of psexec. The protocol is a single-line
// request followed by a status line and the probe's stdout:
//
//	C: PROBE <machine-id>\n
//	S: OK\n
//	S: <probe report>            (then the server closes the connection)
//	S: ERR <message>\n           (on failure)
//
// The explicit OK status line exists because the original protocol had the
// client sniff the whole stream for an "ERR " prefix — which misclassified
// any healthy machine whose report happened to begin with those four bytes
// as unreachable. The client keeps a compat read path for legacy agents
// that send the report unframed.
//
// The transport exists so the collector's code path — attempt, timeout,
// capture stdout, post-collect — is exercised over an actual network
// stack, not only in-process.

// Agent serves probe reports for the machines of a StateSource.
type Agent struct {
	Source StateSource
	Now    func() time.Time

	// Timeout bounds each connection's request/response exchange.
	// Defaults to 10 s.
	Timeout time.Duration

	// Telemetry, when set before Serve/Listen, counts connections,
	// request errors and bytes written (agent_* metrics). A nil registry
	// keeps the serving path uninstrumented.
	Telemetry *telemetry.Registry

	// OnServeError, when set, is called if the background Serve started
	// by Listen exits with an error. Errors caused by Close are not
	// reported.
	OnServeError func(error)

	ln       net.Listener
	mu       sync.Mutex
	closed   bool
	serveErr error
	wg       sync.WaitGroup

	telOnce sync.Once
	tel     agentTelemetry
}

// telemetryHandles resolves the agent's metric handles once.
func (a *Agent) telemetryHandles() *agentTelemetry {
	a.telOnce.Do(func() { a.tel = newAgentTelemetry(a.Telemetry) })
	return &a.tel
}

// Serve starts serving on ln. It returns when the listener is closed;
// closing via Close yields a nil error.
func (a *Agent) Serve(ln net.Listener) error {
	a.mu.Lock()
	a.ln = ln
	a.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			a.mu.Lock()
			closed := a.closed
			a.mu.Unlock()
			if closed {
				a.wg.Wait()
				return nil
			}
			return err
		}
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			a.handle(conn)
		}()
	}
}

// Listen starts the agent on addr (e.g. "127.0.0.1:0") and serves in a
// background goroutine. It returns the bound address. If the background
// Serve fails, the error is recorded (see ServeError) and reported
// through OnServeError; a clean Close reports nothing.
func (a *Agent) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		err := a.Serve(ln)
		if err == nil {
			return
		}
		a.mu.Lock()
		a.serveErr = err
		cb := a.OnServeError
		a.mu.Unlock()
		if cb != nil {
			cb(err)
		}
	}()
	return ln.Addr().String(), nil
}

// ServeError returns the error the background Serve exited with, if any.
func (a *Agent) ServeError() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.serveErr
}

// Close stops the agent.
func (a *Agent) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.closed = true
	if a.ln != nil {
		return a.ln.Close()
	}
	return nil
}

func (a *Agent) timeout() time.Duration {
	if a.Timeout > 0 {
		return a.Timeout
	}
	return 10 * time.Second
}

// Static response lines: the error paths write fixed bytes instead of
// formatting per connection.
var (
	respOK          = []byte("OK\n")
	respBadRequest  = []byte("ERR bad request\n")
	respUnreachable = []byte("ERR unreachable\n")
)

func (a *Agent) handle(conn net.Conn) {
	defer conn.Close()
	tel := a.telemetryHandles()
	tel.conns.Inc()
	tel.inflight.Add(1)
	defer tel.inflight.Add(-1)
	_ = conn.SetDeadline(time.Now().Add(a.timeout()))
	br := getConnReader(conn)
	line, err := br.ReadString('\n')
	putConnReader(br) // single-line request: nothing buffered matters after this
	if err != nil {
		tel.connErrors.Inc()
		return
	}
	id, ok := strings.CutPrefix(strings.TrimSpace(line), "PROBE ")
	if !ok {
		tel.connErrors.Inc()
		n, _ := conn.Write(respBadRequest)
		tel.bytesWritten.Add(int64(n))
		return
	}
	now := time.Now()
	if a.Now != nil {
		now = a.Now()
	}
	sn, up := a.Source.Snapshot(id, now)
	if !up {
		n, _ := conn.Write(respUnreachable)
		tel.bytesWritten.Add(int64(n))
		return
	}
	// Explicit status framing: the report body follows verbatim, whatever
	// bytes it starts with. The report renders into a pooled buffer — the
	// serving path allocates nothing per probe beyond the goroutine.
	n, err := conn.Write(respOK)
	tel.bytesWritten.Add(int64(n))
	if err != nil {
		tel.connErrors.Inc()
		return
	}
	rb := getReportBuf()
	rb.b = probe.AppendRender(rb.b[:0], sn)
	n, _ = conn.Write(rb.b)
	tel.bytesWritten.Add(int64(n))
	putReportBuf(rb)
}

// TCPExecutor probes agents over TCP. A machine with no registered address
// or whose agent reports unreachable yields ErrUnreachable, like a powered
// off host.
type TCPExecutor struct {
	mu      sync.RWMutex
	addrs   map[string]string
	Timeout time.Duration // per-probe dial+read deadline (default 5 s)

	tel transportTelemetry
}

// NewTCPExecutor creates an executor with an empty registry.
func NewTCPExecutor() *TCPExecutor {
	return &TCPExecutor{addrs: make(map[string]string)}
}

// SetTelemetry wires the executor to a metrics registry (tcp_* metrics:
// dial/read latency, bytes in/out, in-flight probes). Call before the
// collection starts; a nil registry switches instrumentation off.
func (t *TCPExecutor) SetTelemetry(reg *telemetry.Registry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tel = newTransportTelemetry(reg)
}

// Register maps a machine ID to its agent's address.
func (t *TCPExecutor) Register(machineID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addrs[machineID] = addr
}

// Exec implements Executor.
func (t *TCPExecutor) Exec(machineID string) ([]byte, error) {
	return t.ExecContext(context.Background(), machineID)
}

// ExecContext implements ContextExecutor: the probe is bounded by both the
// executor's Timeout and ctx's deadline/cancellation, whichever is
// tighter. All failures wrap ErrUnreachable, like a powered-off host.
func (t *TCPExecutor) ExecContext(ctx context.Context, machineID string) ([]byte, error) {
	t.mu.RLock()
	addr, ok := t.addrs[machineID]
	tel := t.tel
	t.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s not registered", ErrUnreachable, machineID)
	}
	timeout := t.Timeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	deadline := time.Now().Add(timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	dialCtx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()
	tel.inflight.Add(1)
	defer tel.inflight.Add(-1)
	var dialer net.Dialer
	dialStart := time.Now()
	conn, err := dialer.DialContext(dialCtx, "tcp", addr)
	tel.dials.Inc()
	tel.dialDuration.Observe(time.Since(dialStart))
	if err != nil {
		tel.dialErrors.Inc()
		return nil, fmt.Errorf("%w: %s: %v", ErrUnreachable, machineID, err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(deadline)
	// Build the request line in a pooled buffer (fmt.Fprintf allocates).
	req := getReportBuf()
	req.b = append(append(append(req.b[:0], "PROBE "...), machineID...), '\n')
	n, err := conn.Write(req.b)
	putReportBuf(req)
	tel.bytesWritten.Add(int64(n))
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrUnreachable, machineID, err)
	}
	readStart := time.Now()
	var out []byte
	if tel.bytesRead != nil {
		cr := &countingReader{r: conn}
		out, err = readFramedReport(cr)
		tel.bytesRead.Add(cr.n)
	} else {
		out, err = readFramedReport(conn)
	}
	tel.probeDuration.Observe(time.Since(readStart))
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrUnreachable, machineID, err)
	}
	return out, nil
}

// countingReader counts the bytes pulled through an io.Reader.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// readFramedReport reads an agent response. Framed responses carry an
// explicit status line ("OK" or "ERR <msg>"); anything else is treated as
// a legacy unframed report whose first line is part of the body (compat
// path for pre-framing agents). The bufio wrapper is pooled; the returned
// report is freshly allocated and owned by the caller.
func readFramedReport(r io.Reader) ([]byte, error) {
	br := getConnReader(r)
	defer putConnReader(br)
	line, err := br.ReadString('\n')
	if err != nil && (err != io.EOF || line == "") {
		return nil, err
	}
	switch status := strings.TrimRight(line, "\r\n"); {
	case status == "OK":
		return io.ReadAll(br)
	case strings.HasPrefix(status, "ERR "):
		return nil, fmt.Errorf("%s", strings.TrimPrefix(status, "ERR "))
	default:
		// Legacy agent: no status line; the line we consumed is report.
		rest, rerr := io.ReadAll(br)
		if rerr != nil {
			return nil, rerr
		}
		return append([]byte(line), rest...), nil
	}
}

// WallCollector runs the collection loop in real time against any
// Executor — the deployment mode of DDC outside the simulation. By default
// it probes sequentially like the paper's coordinator; Workers > 1 probes
// concurrently, the ablation DESIGN.md §5 calls out (the paper accepted
// multi-minute sequential sweeps; concurrency shrinks the sweep at the
// cost of burstier network load).
//
// Unlike the paper's coordinator — which booked every probe timeout as a
// powered-off machine — the collector can retry transient failures
// (Retry) and stop hammering hard-down machines (Breaker); ProbeTimeout
// bounds each probe when the executor is context-aware. Run blocks until
// the iterations complete or stop is closed.
type WallCollector struct {
	Cfg     Config
	Exec    Executor
	Post    PostCollect
	Workers int // concurrent probes per iteration; ≤1 means sequential

	// Prepare, when set, replaces Post: the parse half of post-collection
	// runs on the worker that probed the machine (concurrently, when
	// Workers > 1), and the commit closures run serially in machine order
	// in the sweep's post-pass — same ordering guarantee as Post, minus
	// the serial parse bottleneck.
	Prepare PrepareCollect

	// ProbeTimeout is the per-probe deadline, enforced through the
	// executor's context-aware path when available. Zero means no
	// collector-side deadline (the executor's own timeout still applies).
	ProbeTimeout time.Duration

	// Retry bounds per-machine re-execution of failed probes within an
	// iteration; the zero value reproduces the paper's single-attempt
	// behaviour.
	Retry RetryPolicy

	// Breaker caps probing of persistently failing machines; the zero
	// value disables it.
	Breaker BreakerPolicy

	// OnIteration mirrors SimCollector.OnIteration and additionally
	// carries the iteration's health counters.
	OnIteration IterationFunc

	// Telemetry, when set, streams the run's health into a metrics
	// registry (ddc_* counters/gauges/histograms) and records one span per
	// probe attempt and per breaker skip. Nil keeps the probe path
	// uninstrumented and allocation-free.
	Telemetry *telemetry.Registry

	jmu  sync.Mutex
	jsrc *rng.Source
}

// jitterSrc lazily builds the shared jitter stream.
func (w *WallCollector) jitterSrc() *rng.Source {
	w.jmu.Lock()
	defer w.jmu.Unlock()
	if w.jsrc == nil {
		w.jsrc = rng.Derive(w.Retry.Seed, "ddc-retry-jitter")
	}
	return w.jsrc
}

// jitteredBackoff draws one backoff delay; the mutex serialises draws
// under concurrent workers.
func (w *WallCollector) jitteredBackoff(retry int) time.Duration {
	if w.Retry.Jitter <= 0 {
		return w.Retry.backoff(retry, nil)
	}
	src := w.jitterSrc()
	w.jmu.Lock()
	defer w.jmu.Unlock()
	return w.Retry.backoff(retry, src)
}

// probeOutcome is the result of probing one machine for one iteration.
type probeOutcome struct {
	out      []byte
	err      error
	attempts int
	skipped  bool   // breaker-open skip: no probe was executed
	commit   func() // prepared post-collect commit (Prepare sinks only)
}

// probeWithRetry runs the per-probe attempt loop: deadline, bounded
// retries, exponential backoff with jitter. Every executed attempt is
// recorded as one telemetry span: ok, retry (a failure that will be
// re-attempted), timeout (final attempt killed by the collector's
// per-probe deadline) or error (final attempt failed otherwise).
func (w *WallCollector) probeWithRetry(ctx context.Context, iter int, id string, tel *collectorTelemetry) probeOutcome {
	maxAttempts := w.Retry.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	tel.probesInflight.Add(1)
	defer tel.probesInflight.Add(-1)
	var o probeOutcome
	for try := 0; try < maxAttempts; try++ {
		o.attempts++
		pctx := ctx
		var cancel context.CancelFunc
		if w.ProbeTimeout > 0 {
			pctx, cancel = context.WithTimeout(ctx, w.ProbeTimeout)
		}
		attemptStart := time.Now()
		o.out, o.err = execProbe(pctx, w.Exec, id)
		lat := time.Since(attemptStart)
		timedOut := o.err != nil && pctx.Err() == context.DeadlineExceeded && ctx.Err() == nil
		if cancel != nil {
			cancel()
		}
		tel.probeDuration.Observe(lat)
		if o.err == nil || try == maxAttempts-1 || ctx.Err() != nil {
			switch {
			case o.err == nil:
				tel.span(id, iter, o.attempts, lat, telemetry.OutcomeOK, nil)
			case timedOut:
				tel.span(id, iter, o.attempts, lat, telemetry.OutcomeTimeout, o.err)
			default:
				tel.span(id, iter, o.attempts, lat, telemetry.OutcomeError, o.err)
			}
			return o
		}
		tel.span(id, iter, o.attempts, lat, telemetry.OutcomeRetry, o.err)
		sleepCtx(ctx, w.jitteredBackoff(try))
		if ctx.Err() != nil {
			return o
		}
	}
	return o
}

// sweep probes every machine once and accumulates the iteration's health
// into st and states. The post-collect hook runs serially in machine
// order regardless of worker count (the paper's post-collecting code ran
// at the coordinator, single-threaded).
func (w *WallCollector) sweep(ctx context.Context, iter int, st *Stats, states map[string]*machineState, tel *collectorTelemetry) IterationInfo {
	n := len(w.Cfg.Machines)
	results := make([]probeOutcome, n)

	// Serial pre-pass: breaker admission control.
	probeIdx := make([]int, 0, n)
	for i, id := range w.Cfg.Machines {
		ms := states[id]
		if ms == nil {
			ms = &machineState{}
			states[id] = ms
		}
		if w.Breaker.enabled() && !ms.shouldProbe(iter, w.Breaker) {
			results[i] = probeOutcome{err: fmt.Errorf("%w: %s", ErrBreakerOpen, id), skipped: true}
			tel.span(id, iter, 0, 0, telemetry.OutcomeBreakerSkip, nil)
			continue
		}
		probeIdx = append(probeIdx, i)
	}

	// Dispatch the admitted probes, sequentially or across workers. With a
	// Prepare sink the parse happens here too, on the goroutine that ran
	// the probe; only the commit is left for the serial post-pass.
	probeOne := func(i int) {
		results[i] = w.probeWithRetry(ctx, iter, w.Cfg.Machines[i], tel)
		if w.Prepare != nil {
			r := &results[i]
			r.commit = w.Prepare(iter, w.Cfg.Machines[i], r.out, r.err)
		}
	}
	if w.Workers <= 1 {
		for _, i := range probeIdx {
			probeOne(i)
		}
	} else {
		sem := make(chan struct{}, w.Workers)
		var wg sync.WaitGroup
		for _, i := range probeIdx {
			i := i
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				probeOne(i)
			}()
		}
		wg.Wait()
	}

	// Serial post-pass: accounting, breaker transitions, post-collect.
	// Telemetry counters are bumped here, next to the Stats fields they
	// mirror, so a /metrics scrape after the run matches Stats exactly.
	info := IterationInfo{Iter: iter, Attempted: n}
	for i, id := range w.Cfg.Machines {
		r := results[i]
		ms := states[id]
		if r.skipped {
			st.BreakerSkipped++
			info.BreakerSkipped++
			tel.breakerSkips.Inc()
		} else {
			st.Attempts += r.attempts
			st.Retries += r.attempts - 1
			info.Probes += r.attempts
			info.Retries += r.attempts - 1
			ms.attempts += r.attempts
			ms.retries += r.attempts - 1
			tel.probes.Add(int64(r.attempts))
			tel.retries.Add(int64(r.attempts - 1))
			if r.err == nil {
				st.Samples++
				info.Responded++
				tel.samples.Inc()
			} else {
				tel.failures.Inc()
			}
			if ms.record(iter, r.err != nil, w.Breaker) {
				st.BreakerOpens++
				tel.breakerOpens.Inc()
			}
		}
		if ms.open {
			info.BreakerOpen++
		}
		switch {
		case r.commit != nil:
			r.commit()
		case w.Prepare != nil:
			// Breaker-skipped machines never reached the dispatch phase;
			// prepare-and-commit inline (cheap: err is always non-nil here,
			// and Prepare may return nil when there is nothing to commit).
			if c := w.Prepare(iter, id, r.out, r.err); c != nil {
				c()
			}
		case w.Post != nil:
			w.Post(iter, id, r.out, r.err)
		}
	}
	tel.breakerOpenMachines.Set(int64(info.BreakerOpen))
	return info
}

// Run performs n iterations, sleeping the remainder of each period.
// A nil stop channel disables early termination.
func (w *WallCollector) Run(n int, stop <-chan struct{}) (Stats, error) {
	ctx := context.Background()
	if stop != nil {
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		defer cancel()
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case <-stop:
				cancel()
			case <-done:
			}
		}()
	}
	return w.RunContext(ctx, n)
}

// RunContext is the context-aware collection loop: cancelling ctx stops
// the run (after the in-flight iteration's bookkeeping) and propagates
// into in-flight probes when the executor supports contexts.
func (w *WallCollector) RunContext(ctx context.Context, n int) (st Stats, err error) {
	if err := w.Cfg.Validate(); err != nil {
		return Stats{}, err
	}
	states := make(map[string]*machineState, len(w.Cfg.Machines))
	tel := newCollectorTelemetry(w.Telemetry)
	defer func() {
		st.Machines = make(map[string]MachineHealth, len(states))
		for id, ms := range states {
			st.Machines[id] = ms.health()
		}
	}()
	for iter := 0; iter < n; iter++ {
		start := time.Now()
		if w.Cfg.inOutage(start) {
			st.Skipped++
			tel.iterationsSkipped.Inc()
		} else {
			st.Iterations++
			tel.iterations.Inc()
			info := w.sweep(ctx, iter, &st, states, &tel)
			info.Start = start
			info.End = time.Now()
			tel.iterationDuration.Observe(info.End.Sub(start))
			if w.OnIteration != nil {
				w.OnIteration(info)
			}
		}
		if iter == n-1 || ctx.Err() != nil {
			break
		}
		rest := w.Cfg.Period - time.Since(start)
		if rest <= 0 {
			continue
		}
		t := time.NewTimer(rest)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return st, nil
		}
	}
	return st, nil
}
