package ddc

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"winlab/internal/probe"
)

// This file implements a real network transport for the collector: probe
// agents that serve W32Probe reports over TCP, and a TCPExecutor that the
// coordinator uses in place of psexec. The protocol is a single-line
// request followed by the probe's stdout:
//
//	C: PROBE <machine-id>\n
//	S: <probe report>            (then the server closes the connection)
//	S: ERR <message>\n           (on failure)
//
// It exists so the collector's code path — attempt, timeout, capture
// stdout, post-collect — is exercised over an actual network stack, not
// only in-process.

// Agent serves probe reports for the machines of a StateSource.
type Agent struct {
	Source StateSource
	Now    func() time.Time

	ln     net.Listener
	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// Serve starts serving on ln. It returns when the listener is closed.
func (a *Agent) Serve(ln net.Listener) error {
	a.mu.Lock()
	a.ln = ln
	a.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			a.mu.Lock()
			closed := a.closed
			a.mu.Unlock()
			if closed {
				a.wg.Wait()
				return nil
			}
			return err
		}
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			a.handle(conn)
		}()
	}
}

// Listen starts the agent on addr (e.g. "127.0.0.1:0") and serves in a
// background goroutine. It returns the bound address.
func (a *Agent) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() { _ = a.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close stops the agent.
func (a *Agent) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.closed = true
	if a.ln != nil {
		return a.ln.Close()
	}
	return nil
}

func (a *Agent) handle(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return
	}
	id, ok := strings.CutPrefix(strings.TrimSpace(line), "PROBE ")
	if !ok {
		fmt.Fprintf(conn, "ERR bad request\n")
		return
	}
	now := time.Now()
	if a.Now != nil {
		now = a.Now()
	}
	sn, up := a.Source.Snapshot(id, now)
	if !up {
		fmt.Fprintf(conn, "ERR unreachable\n")
		return
	}
	_, _ = conn.Write(probe.Render(sn))
}

// TCPExecutor probes agents over TCP. A machine with no registered address
// or whose agent reports unreachable yields ErrUnreachable, like a powered
// off host.
type TCPExecutor struct {
	mu      sync.RWMutex
	addrs   map[string]string
	Timeout time.Duration // per-probe dial+read deadline (default 5 s)
}

// NewTCPExecutor creates an executor with an empty registry.
func NewTCPExecutor() *TCPExecutor {
	return &TCPExecutor{addrs: make(map[string]string)}
}

// Register maps a machine ID to its agent's address.
func (t *TCPExecutor) Register(machineID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addrs[machineID] = addr
}

// Exec implements Executor.
func (t *TCPExecutor) Exec(machineID string) ([]byte, error) {
	t.mu.RLock()
	addr, ok := t.addrs[machineID]
	t.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s not registered", ErrUnreachable, machineID)
	}
	timeout := t.Timeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrUnreachable, machineID, err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(timeout))
	if _, err := fmt.Fprintf(conn, "PROBE %s\n", machineID); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrUnreachable, machineID, err)
	}
	out, err := io.ReadAll(conn)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrUnreachable, machineID, err)
	}
	if msg, isErr := strings.CutPrefix(string(out), "ERR "); isErr {
		return nil, fmt.Errorf("%w: %s: %s", ErrUnreachable, machineID, strings.TrimSpace(msg))
	}
	return out, nil
}

// WallCollector runs the collection loop in real time against any
// Executor — the deployment mode of DDC outside the simulation. By default
// it probes sequentially like the paper's coordinator; Workers > 1 probes
// concurrently, the ablation DESIGN.md §5 calls out (the paper accepted
// multi-minute sequential sweeps; concurrency shrinks the sweep at the
// cost of burstier network load). Run blocks until the iterations complete
// or stop is closed.
type WallCollector struct {
	Cfg     Config
	Exec    Executor
	Post    PostCollect
	Workers int // concurrent probes per iteration; ≤1 means sequential

	// OnIteration mirrors SimCollector.OnIteration.
	OnIteration func(iter int, start time.Time, attempted, responded int)
}

// sweep probes every machine once and returns the number that responded.
// The post-collect hook runs serially regardless of worker count (the
// paper's post-collecting code ran at the coordinator, single-threaded).
func (w *WallCollector) sweep(iter int, st *Stats) int {
	type outcome struct {
		idx int
		out []byte
		err error
	}
	n := len(w.Cfg.Machines)
	results := make([]outcome, n)
	workers := w.Workers
	if workers <= 1 {
		for i, id := range w.Cfg.Machines {
			out, err := w.Exec.Exec(id)
			results[i] = outcome{idx: i, out: out, err: err}
		}
	} else {
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i, id := range w.Cfg.Machines {
			i, id := i, id
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				out, err := w.Exec.Exec(id)
				results[i] = outcome{idx: i, out: out, err: err}
			}()
		}
		wg.Wait()
	}
	responded := 0
	for i, id := range w.Cfg.Machines {
		r := results[i]
		st.Attempts++
		if r.err == nil {
			st.Samples++
			responded++
		}
		if w.Post != nil {
			w.Post(iter, id, r.out, r.err)
		}
	}
	return responded
}

// Run performs n iterations, sleeping the remainder of each period.
// A nil stop channel disables early termination.
func (w *WallCollector) Run(n int, stop <-chan struct{}) (Stats, error) {
	if err := w.Cfg.Validate(); err != nil {
		return Stats{}, err
	}
	var st Stats
	for iter := 0; iter < n; iter++ {
		start := time.Now()
		if w.Cfg.inOutage(start) {
			st.Skipped++
		} else {
			st.Iterations++
			responded := w.sweep(iter, &st)
			if w.OnIteration != nil {
				w.OnIteration(iter, start, len(w.Cfg.Machines), responded)
			}
		}
		if iter == n-1 {
			break
		}
		rest := w.Cfg.Period - time.Since(start)
		if rest <= 0 {
			continue
		}
		select {
		case <-time.After(rest):
		case <-stop:
			return st, nil
		}
	}
	return st, nil
}
