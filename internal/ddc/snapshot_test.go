package ddc

import (
	"testing"
	"time"

	"winlab/internal/machine"
	"winlab/internal/sim"
	"winlab/internal/trace"
)

// TestSnapshotEveryPublishesCommittedPrefixes runs a collection with a
// SnapshotEvery tap and asserts every published clone is exactly the
// committed prefix at its iteration boundary: iterations 0..k complete,
// all of iteration k's samples present, none of iteration k+1's, and no
// storage shared with the live dataset.
func TestSnapshotEveryPublishesCommittedPrefixes(t *testing.T) {
	src := multiSource{ms: map[string]*machine.Machine{}}
	ids := []string{"M1", "M2", "M3"}
	for _, id := range ids {
		m := newMachine(id)
		m.PowerOn(t0.Add(-time.Hour))
		src.ms[id] = m
	}

	eng := sim.New(t0)
	end := t0.Add(8 * 15 * time.Minute)
	sink := NewDatasetSink(t0, end, 15*time.Minute, nil)

	every := 2
	var snaps []*trace.Dataset
	detach := sink.SnapshotEvery(every, func(ds *trace.Dataset) {
		snaps = append(snaps, ds)
	})
	defer detach()

	coll := &SimCollector{
		Cfg: Config{
			Machines:    ids,
			Period:      15 * time.Minute,
			LatencyOK:   func() time.Duration { return time.Second },
			LatencyFail: func() time.Duration { return 4 * time.Second },
		},
		Exec: &Direct{Source: src, Now: eng.Now},
		Post: sink.Post,
	}
	coll.OnIteration = sink.OnIteration
	if err := coll.Install(eng, t0, end); err != nil {
		t.Fatal(err)
	}
	eng.Run()

	final, err := sink.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	wantSnaps := len(final.Iterations) / every
	if len(snaps) != wantSnaps {
		t.Fatalf("published %d snapshots, want %d (every %d of %d iterations)",
			len(snaps), wantSnaps, every, len(final.Iterations))
	}
	for i, ds := range snaps {
		k := (i + 1) * every // iterations in this snapshot
		if len(ds.Iterations) != k {
			t.Fatalf("snapshot %d has %d iterations, want %d", i, len(ds.Iterations), k)
		}
		lastIter := ds.Iterations[k-1].Iter
		for j := range ds.Samples {
			if ds.Samples[j].Iter > lastIter {
				t.Fatalf("snapshot %d contains sample of uncommitted iteration %d (boundary %d)",
					i, ds.Samples[j].Iter, lastIter)
			}
		}
		// Every committed sample through the boundary must be present.
		want := 0
		for j := range final.Samples {
			if final.Samples[j].Iter <= lastIter {
				want++
			}
		}
		if len(ds.Samples) != want {
			t.Fatalf("snapshot %d has %d samples, want %d through iteration %d",
				i, len(ds.Samples), want, lastIter)
		}
	}
	// No shared storage: growing the live dataset must not disturb a
	// published clone.
	if len(snaps) > 0 && len(snaps[0].Samples) > 0 {
		snap := snaps[0]
		before := snap.Samples[0]
		final.Samples[0].Machine = "tampered"
		if snap.Samples[0] != before {
			t.Fatal("snapshot shares sample storage with the live dataset")
		}
		final.Samples[0] = before
	}
}
