package ddc

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"winlab/internal/machine"
	"winlab/internal/probe"
	"winlab/internal/sim"
	"winlab/internal/smart"
)

var t0 = time.Date(2003, 10, 6, 8, 0, 0, 0, time.UTC)

func TestConfigValidate(t *testing.T) {
	ok := Config{Machines: []string{"M1"}, Period: time.Minute}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	cases := []Config{
		{Period: time.Minute},                  // no machines
		{Machines: []string{"M1"}},             // no period
		{Machines: []string{"M1"}, Period: -1}, // negative period
		{Machines: []string{"M1"}, Period: time.Minute, Outages: []Outage{{Start: t0, End: t0}}},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestOutageContains(t *testing.T) {
	o := Outage{Start: t0, End: t0.Add(time.Hour)}
	if !o.Contains(t0) {
		t.Error("start not contained")
	}
	if o.Contains(t0.Add(time.Hour)) {
		t.Error("end contained (should be exclusive)")
	}
	if o.Contains(t0.Add(-time.Second)) {
		t.Error("before start contained")
	}
}

// fakeExec answers for a configurable set of machines.
type fakeExec struct {
	up      map[string]bool
	calls   []string
	payload func(id string) []byte
}

func (f *fakeExec) Exec(id string) ([]byte, error) {
	f.calls = append(f.calls, id)
	if !f.up[id] {
		return nil, ErrUnreachable
	}
	if f.payload != nil {
		return f.payload(id), nil
	}
	return []byte("data:" + id), nil
}

func TestSimCollectorIterates(t *testing.T) {
	eng := sim.New(t0)
	exec := &fakeExec{up: map[string]bool{"M1": true, "M2": false, "M3": true}}
	var posts []string
	var postErrs int
	coll := &SimCollector{
		Cfg: Config{
			Machines:    []string{"M1", "M2", "M3"},
			Period:      15 * time.Minute,
			LatencyOK:   func() time.Duration { return time.Second },
			LatencyFail: func() time.Duration { return 4 * time.Second },
		},
		Exec: exec,
		Post: func(iter int, id string, out []byte, err error) {
			if err != nil {
				postErrs++
				return
			}
			posts = append(posts, fmt.Sprintf("%d/%s", iter, id))
		},
	}
	var iterDone int
	coll.OnIteration = func(info IterationInfo) {
		iterDone++
		if info.Attempted != 3 || info.Responded != 2 {
			t.Errorf("iteration %d: attempted=%d responded=%d", info.Iter, info.Attempted, info.Responded)
		}
		if info.Probes != 3 || info.Retries != 0 {
			t.Errorf("iteration %d: probes=%d retries=%d", info.Iter, info.Probes, info.Retries)
		}
	}
	end := t0.Add(46 * time.Minute) // iterations at 0, 15, 30, 45
	if err := coll.Install(eng, t0, end); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	st := coll.Stats()
	if st.Iterations != 4 || st.Attempts != 12 || st.Samples != 8 || st.Skipped != 0 {
		t.Errorf("stats = %+v", st)
	}
	if iterDone != 4 {
		t.Errorf("OnIteration fired %d times", iterDone)
	}
	if len(posts) != 8 || postErrs != 4 {
		t.Errorf("posts = %d, errors = %d", len(posts), postErrs)
	}
	// Probing is sequential and ordered.
	if exec.calls[0] != "M1" || exec.calls[1] != "M2" || exec.calls[2] != "M3" {
		t.Errorf("probe order: %v", exec.calls[:3])
	}
}

func TestSimCollectorProbesSpreadInTime(t *testing.T) {
	eng := sim.New(t0)
	var times []time.Time
	exec := &fakeExec{up: map[string]bool{"M1": true, "M2": true, "M3": true}}
	coll := &SimCollector{
		Cfg: Config{
			Machines:  []string{"M1", "M2", "M3"},
			Period:    15 * time.Minute,
			LatencyOK: func() time.Duration { return 2 * time.Second },
		},
		Exec: exec,
		Post: func(iter int, id string, out []byte, err error) {
			times = append(times, eng.Now())
		},
	}
	if err := coll.Install(eng, t0, t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(times) != 3 {
		t.Fatalf("probes = %d", len(times))
	}
	// Each subsequent probe is delayed by the previous latency.
	if !times[1].Equal(t0.Add(2*time.Second)) || !times[2].Equal(t0.Add(4*time.Second)) {
		t.Errorf("probe times: %v", times)
	}
}

func TestSimCollectorOutages(t *testing.T) {
	eng := sim.New(t0)
	exec := &fakeExec{up: map[string]bool{"M1": true}}
	coll := &SimCollector{
		Cfg: Config{
			Machines: []string{"M1"},
			Period:   15 * time.Minute,
			Outages:  []Outage{{Start: t0.Add(10 * time.Minute), End: t0.Add(40 * time.Minute)}},
		},
		Exec: exec,
	}
	if err := coll.Install(eng, t0, t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	st := coll.Stats()
	// Iterations at 0, 15, 30, 45: those at 15 and 30 are inside the outage.
	if st.Iterations != 2 || st.Skipped != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSimCollectorRejectsBadConfig(t *testing.T) {
	coll := &SimCollector{Cfg: Config{}, Exec: &fakeExec{}}
	if err := coll.Install(sim.New(t0), t0, t0.Add(time.Hour)); err == nil {
		t.Error("bad config accepted")
	}
}

// memSource serves snapshots for one machine.
type memSource struct{ m *machine.Machine }

func (s memSource) Snapshot(id string, at time.Time) (machine.Snapshot, bool) {
	if s.m == nil || s.m.ID != id {
		return machine.Snapshot{}, false
	}
	return s.m.Snapshot(at)
}

func newMachine(id string) *machine.Machine {
	hw := machine.Hardware{CPUModel: "P4", CPUGHz: 2.4, RAMMB: 512, DiskGB: 74.5}
	return machine.New(id, "L01", hw, smart.NewDisk("D-"+id, 74.5))
}

func TestDirectExecutor(t *testing.T) {
	m := newMachine("M1")
	m.PowerOn(t0)
	now := t0.Add(10 * time.Minute)
	d := &Direct{Source: memSource{m}, Now: func() time.Time { return now }}

	out, err := d.Exec("M1")
	if err != nil {
		t.Fatal(err)
	}
	sn, err := probe.Parse(out)
	if err != nil {
		t.Fatalf("direct executor produced unparseable output: %v", err)
	}
	if sn.ID != "M1" || sn.Uptime != 10*time.Minute {
		t.Errorf("parsed %+v", sn)
	}

	if _, err := d.Exec("M2"); !errors.Is(err, ErrUnreachable) {
		t.Errorf("unknown machine error = %v", err)
	}
	m.PowerOff(now)
	now = now.Add(time.Minute)
	if _, err := d.Exec("M1"); !errors.Is(err, ErrUnreachable) {
		t.Errorf("powered-off machine error = %v", err)
	}
}

func TestDatasetSink(t *testing.T) {
	m := newMachine("M1")
	m.PowerOn(t0)
	sn, _ := m.Snapshot(t0.Add(5 * time.Minute))
	sink := NewDatasetSink(t0, t0.AddDate(0, 0, 1), 15*time.Minute, nil)

	sink.Post(0, "M1", probe.Render(sn), nil)
	sink.Post(0, "M2", nil, ErrUnreachable) // failures produce no sample
	sink.Post(0, "M3", []byte("garbage"), nil)
	sink.OnIteration(IterationInfo{Iter: 0, Start: t0, Attempted: 3, Responded: 1})

	ds, err := sink.Dataset()
	if err == nil {
		t.Error("parse error not surfaced")
	}
	if sink.ParseErrors != 1 {
		t.Errorf("ParseErrors = %d", sink.ParseErrors)
	}
	if len(ds.Samples) != 1 || ds.Samples[0].Machine != "M1" {
		t.Errorf("samples = %+v", ds.Samples)
	}
	if len(ds.Iterations) != 1 || ds.Iterations[0].Responded != 1 {
		t.Errorf("iterations = %+v", ds.Iterations)
	}
}
