package ddc

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestFaultExecutorDeterministic(t *testing.T) {
	run := func() ([]bool, FaultStats) {
		fx := &FaultExecutor{
			Inner:          &fakeExec{up: map[string]bool{"M": true}},
			TransientFailP: 0.3,
			Seed:           9,
		}
		outcomes := make([]bool, 0, 200)
		for i := 0; i < 200; i++ {
			_, err := fx.Exec("M")
			outcomes = append(outcomes, err == nil)
		}
		return outcomes, fx.Stats()
	}
	a, sa := run()
	b, sb := run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	if sa != sb {
		t.Errorf("stats diverged: %+v vs %+v", sa, sb)
	}
	if sa.Calls != 200 {
		t.Errorf("calls = %d", sa.Calls)
	}
	// 30% of 200 with a wide tolerance band.
	if sa.Transients < 30 || sa.Transients > 90 {
		t.Errorf("transients = %d, want ~60", sa.Transients)
	}
	fails := 0
	for _, ok := range a {
		if !ok {
			fails++
		}
	}
	if fails != sa.Transients {
		t.Errorf("observed %d failures, injected %d", fails, sa.Transients)
	}
}

func TestFaultExecutorHardDown(t *testing.T) {
	fx := &FaultExecutor{
		Inner:        &fakeExec{up: map[string]bool{"M1": true, "M2": true}},
		DownMachines: map[string]bool{"M2": true},
	}
	if _, err := fx.Exec("M1"); err != nil {
		t.Errorf("healthy machine failed: %v", err)
	}
	if _, err := fx.Exec("M2"); !errors.Is(err, ErrUnreachable) {
		t.Errorf("hard-down machine err = %v", err)
	}
	if st := fx.Stats(); st.DownDenied != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFaultExecutorLatencySpike(t *testing.T) {
	fx := &FaultExecutor{
		Inner:         &fakeExec{up: map[string]bool{"M": true}},
		LatencySpikeP: 1,
		SpikeLatency:  30 * time.Millisecond,
	}
	start := time.Now()
	if _, err := fx.Exec("M"); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 30*time.Millisecond {
		t.Errorf("spike not injected: took %v", el)
	}
	if st := fx.Stats(); st.Spikes != 1 {
		t.Errorf("stats = %+v", st)
	}

	// A spiking probe under an expired context reports unreachable — the
	// shape a per-probe deadline converts slowness into.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start = time.Now()
	if _, err := fx.ExecContext(ctx, "M"); !errors.Is(err, ErrUnreachable) {
		t.Errorf("cancelled spike err = %v", err)
	}
	if el := time.Since(start); el > 25*time.Millisecond {
		t.Errorf("cancelled spike slept the full spike: %v", el)
	}
}
