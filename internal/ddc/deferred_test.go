package ddc

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"time"

	"winlab/internal/machine"
	"winlab/internal/probe"
	"winlab/internal/sim"
	"winlab/internal/telemetry"
)

// TestDirectBeginCapturesStateAtBeginTime pins the DeferredExecutor
// contract: the snapshot is taken when Begin runs, so executing the job
// later — after the machine changed state — still renders the state at
// Begin time. This is what lets the collector defer rendering to workers
// without perturbing what the probe observed.
func TestDirectBeginCapturesStateAtBeginTime(t *testing.T) {
	m := newMachine("M1")
	m.PowerOn(t0)
	now := t0.Add(10 * time.Minute)
	d := &Direct{Source: multiSource{ms: map[string]*machine.Machine{"M1": m}}, Now: func() time.Time { return now }}

	job, err := d.Begin("M1")
	if err != nil {
		t.Fatal(err)
	}
	// Change the world after Begin: power the machine off and move time.
	m.PowerOff(now)
	now = now.Add(time.Hour)

	sn, perr := probe.Parse(job())
	if perr != nil {
		t.Fatalf("deferred render unparseable: %v", perr)
	}
	if sn.Uptime != 10*time.Minute {
		t.Errorf("deferred render observed uptime %v, want the Begin-time 10m", sn.Uptime)
	}
	if _, err := d.Begin("M1"); !errors.Is(err, ErrUnreachable) {
		t.Errorf("powered-off Begin error = %v", err)
	}
}

// runSimCollection builds a 3-machine fleet (one powered off), runs a
// 4-iteration sim collection with the given worker count, and returns the
// sink, the collector stats, the rendered metrics and the recorded spans.
func runSimCollection(t *testing.T, workers int) (*DatasetSink, Stats, string, []telemetry.Span) {
	t.Helper()
	src := multiSource{ms: map[string]*machine.Machine{}}
	for _, id := range []string{"M1", "M3"} {
		m := newMachine(id)
		m.PowerOn(t0.Add(-time.Hour))
		src.ms[id] = m
	}
	src.ms["M2"] = newMachine("M2") // never powered on: unreachable

	reg := telemetry.NewRegistry()
	eng := sim.New(t0)
	end := t0.Add(46 * time.Minute)
	sink := NewDatasetSink(t0, end, 15*time.Minute, nil).WithTelemetry(reg)
	coll := &SimCollector{
		Cfg: Config{
			Machines:    []string{"M1", "M2", "M3"},
			Period:      15 * time.Minute,
			LatencyOK:   func() time.Duration { return time.Second },
			LatencyFail: func() time.Duration { return 4 * time.Second },
		},
		Exec:      &Direct{Source: src, Now: eng.Now},
		Post:      sink.Post,
		Prepare:   sink.Prepare,
		Workers:   workers,
		Telemetry: reg,
	}
	coll.OnIteration = sink.OnIteration
	if err := coll.Install(eng, t0, end); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return sink, coll.Stats(), buf.String(), reg.Spans().Snapshot()
}

// TestSimCollectorWorkersEquivalent is the determinism contract of the
// deferred collection path: a Workers=4 run must produce the same
// dataset, the same run stats, the same metrics and the same spans as the
// sequential run — bit for bit. Under -race this also exercises the
// render/parse fan-out.
func TestSimCollectorWorkersEquivalent(t *testing.T) {
	sink1, st1, prom1, spans1 := runSimCollection(t, 0)
	sink4, st4, prom4, spans4 := runSimCollection(t, 4)

	ds1, err1 := sink1.Dataset()
	ds4, err4 := sink4.Dataset()
	if err1 != nil || err4 != nil {
		t.Fatalf("dataset errors: %v / %v", err1, err4)
	}
	if len(ds1.Samples) == 0 || len(ds1.Iterations) != 4 {
		t.Fatalf("degenerate serial run: %d samples, %d iterations", len(ds1.Samples), len(ds1.Iterations))
	}
	if !reflect.DeepEqual(ds1.Samples, ds4.Samples) {
		t.Error("samples differ between Workers=0 and Workers=4")
	}
	if !reflect.DeepEqual(ds1.Iterations, ds4.Iterations) {
		t.Error("iterations differ between Workers=0 and Workers=4")
	}
	if !reflect.DeepEqual(st1, st4) {
		t.Errorf("stats differ:\nserial   %+v\ndeferred %+v", st1, st4)
	}
	if prom1 != prom4 {
		t.Errorf("metrics differ:\nserial:\n%s\ndeferred:\n%s", prom1, prom4)
	}
	// Spans are wall-clock stamped at Record time; everything else — order
	// included — must match.
	strip := func(ss []telemetry.Span) []telemetry.Span {
		out := make([]telemetry.Span, len(ss))
		for i, sp := range ss {
			sp.Time = time.Time{}
			out[i] = sp
		}
		return out
	}
	if !reflect.DeepEqual(strip(spans1), strip(spans4)) {
		t.Error("spans differ between Workers=0 and Workers=4")
	}
}

// deferredFake is a DeferredExecutor with scripted payloads, for driving
// the deferred path through outcomes Direct cannot produce (garbage
// reports → Prepare's parse-error branch).
type deferredFake struct {
	up      map[string]bool
	payload func(id string) []byte
}

func (f *deferredFake) Exec(id string) ([]byte, error) {
	job, err := f.Begin(id)
	if err != nil {
		return nil, err
	}
	return job(), nil
}

func (f *deferredFake) Begin(id string) (ProbeJob, error) {
	if !f.up[id] {
		return nil, ErrUnreachable
	}
	return func() []byte { return f.payload(id) }, nil
}

// TestDeferredParseErrorsMatchSerial checks the deferred path books parse
// errors (concurrently prepared, serially committed) exactly like the
// sequential path: same counts, same per-iteration attribution.
func TestDeferredParseErrorsMatchSerial(t *testing.T) {
	m := newMachine("M1")
	m.PowerOn(t0)
	sn, _ := m.Snapshot(t0.Add(5 * time.Minute))
	good := probe.Render(sn)

	run := func(workers int) *DatasetSink {
		exec := &deferredFake{
			up: map[string]bool{"M1": true, "M2": true},
			payload: func(id string) []byte {
				if id == "M2" {
					return []byte("garbage")
				}
				return good
			},
		}
		eng := sim.New(t0)
		end := t0.Add(16 * time.Minute) // iterations at 0 and 15
		sink := NewDatasetSink(t0, end, 15*time.Minute, nil)
		coll := &SimCollector{
			Cfg: Config{
				Machines:    []string{"M1", "M2"},
				Period:      15 * time.Minute,
				LatencyOK:   func() time.Duration { return time.Second },
				LatencyFail: func() time.Duration { return 4 * time.Second },
			},
			Exec:    exec,
			Post:    sink.Post,
			Prepare: sink.Prepare,
			Workers: workers,
		}
		coll.OnIteration = sink.OnIteration
		if err := coll.Install(eng, t0, end); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		return sink
	}

	serial, deferred := run(1), run(3)
	if serial.ParseErrors != 2 || deferred.ParseErrors != 2 {
		t.Fatalf("parse errors: serial %d, deferred %d, want 2", serial.ParseErrors, deferred.ParseErrors)
	}
	ds1, e1 := serial.Dataset()
	ds2, e2 := deferred.Dataset()
	if e1 == nil || e2 == nil {
		t.Fatal("parse error not surfaced by Dataset()")
	}
	if !reflect.DeepEqual(ds1.Samples, ds2.Samples) || !reflect.DeepEqual(ds1.Iterations, ds2.Iterations) {
		t.Error("datasets differ between serial and deferred parse-error runs")
	}
	if ds1.Iterations[0].ParseErrors != 1 || ds1.Iterations[1].ParseErrors != 1 {
		t.Errorf("per-iteration parse-error attribution: %+v", ds1.Iterations)
	}
}
