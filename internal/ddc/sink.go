package ddc

import (
	"fmt"
	"sync"
	"time"

	"winlab/internal/machine"
	"winlab/internal/probe"
	"winlab/internal/telemetry"
	"winlab/internal/trace"
)

// DatasetSink is the standard post-collecting code: it parses every probe
// report and accumulates a trace.Dataset, exactly like the paper's Python
// post-collect extracted and stored the relevant metrics at the
// coordinator. It is safe for concurrent use (the TCP collector probes
// from multiple goroutines when configured to).
type DatasetSink struct {
	mu sync.Mutex
	d  *trace.Dataset

	// ParseErrors counts malformed reports (should stay zero; a non-zero
	// value indicates a probe/transport bug).
	ParseErrors int
	lastErr     error

	// bookedParseErrs is how many parse errors had already been attributed
	// to finished iterations; the difference to ParseErrors is what the
	// next OnIteration books.
	bookedParseErrs int

	tel sinkTelemetry

	// taps observe every committed sample and iteration record under the
	// sink lock, in attachment order — the multiplexing point for the
	// streaming invariant checker (AttachCheck) and the anomaly detectors
	// (anomaly.Detectors via Tap). Empty (the default) keeps the commit
	// path branch-cheap and allocation-free: ranging an empty slice costs
	// nothing and commits never allocate on behalf of taps.
	taps []*sinkTap
}

// sinkTap is one attached observer pair. Either func may be nil.
type sinkTap struct {
	sample func(*trace.Sample)
	iter   func(trace.Iteration)
}

// Tap attaches an observer to the sink's commit path: onSample sees
// every committed sample (pointer valid only during the call) and onIter
// every booked iteration record, both invoked under the sink lock in
// attachment order. Either func may be nil. The returned detach func
// removes exactly this tap (idempotent); remaining taps keep their
// relative order. Attach before collection starts — taps want to see
// every commit from the first iteration on. Safe on a nil sink (returns
// a no-op detach).
func (s *DatasetSink) Tap(onSample func(*trace.Sample), onIter func(trace.Iteration)) (detach func()) {
	if s == nil {
		return func() {}
	}
	t := &sinkTap{sample: onSample, iter: onIter}
	s.mu.Lock()
	s.taps = append(s.taps, t)
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		for i, tt := range s.taps {
			if tt == t {
				s.taps = append(s.taps[:i], s.taps[i+1:]...)
				return
			}
		}
	}
}

// NewDatasetSink creates a sink collecting into a dataset with the given
// experiment bounds and sampling period.
func NewDatasetSink(start, end time.Time, period time.Duration, machines []trace.MachineInfo) *DatasetSink {
	return &DatasetSink{d: &trace.Dataset{
		Start:    start,
		End:      end,
		Period:   period,
		Machines: machines,
	}}
}

// WithTelemetry wires the sink to a metrics registry (sink_* counters;
// parse errors additionally record a parse_error span) and returns the
// sink for chaining. A nil registry keeps the sink uninstrumented.
func (s *DatasetSink) WithTelemetry(reg *telemetry.Registry) *DatasetSink {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tel = newSinkTelemetry(reg)
	return s
}

// Post is the PostCollect hook: parse and commit in one call. It stays
// closure-free — the sequential collector calls it once per probe on the
// hot path — and honours the PostCollect lifetime contract: ParseBytes
// interns what it keeps, so nothing retains stdout after the call (the
// collector may reuse the underlying buffer immediately).
func (s *DatasetSink) Post(iter int, machineID string, stdout []byte, err error) {
	if err != nil {
		return // unreachable machine: no sample
	}
	sn, perr := probe.ParseBytes(stdout)
	s.commit(iter, machineID, sn, perr)
}

// Prepare is the PrepareCollect hook: the report parse — the expensive,
// pure half of post-collection — runs on the calling goroutine (safe to
// fan across an iteration's probes), and the returned commit closure
// mutates the dataset under the sink lock. Collectors invoke commits
// serially in machine order, so the accumulated dataset is byte-identical
// to the single-phase Post path. A nil return means there is nothing to
// commit (unreachable machine).
func (s *DatasetSink) Prepare(iter int, machineID string, stdout []byte, err error) func() {
	if err != nil {
		return nil // unreachable machine: no sample
	}
	sn, perr := probe.ParseBytes(stdout)
	return func() { s.commit(iter, machineID, sn, perr) }
}

// commit books one parsed report (or parse failure) into the dataset.
func (s *DatasetSink) commit(iter int, machineID string, sn machine.Snapshot, perr error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if perr != nil {
		s.ParseErrors++
		s.lastErr = fmt.Errorf("machine %s: %w", machineID, perr)
		s.tel.parseErrors.Inc()
		if s.tel.spans != nil {
			s.tel.spans.Record(telemetry.Span{
				Machine: machineID,
				Iter:    iter,
				Outcome: telemetry.OutcomeParseError,
				Err:     perr.Error(),
			})
		}
		return
	}
	s.d.Samples = append(s.d.Samples, trace.FromSnapshot(iter, sn))
	s.tel.samples.Inc()
	for _, t := range s.taps {
		if t.sample != nil {
			t.sample(&s.d.Samples[len(s.d.Samples)-1])
		}
	}
}

// OnIteration records per-iteration bookkeeping; wire it to the
// collector's OnIteration hook. Parse errors that surfaced since the
// previous iteration are attributed to this one (the collectors run the
// post-collect hooks for an iteration before its OnIteration fires).
func (s *DatasetSink) OnIteration(info IterationInfo) {
	s.mu.Lock()
	defer s.mu.Unlock()
	perrs := s.ParseErrors - s.bookedParseErrs
	s.bookedParseErrs = s.ParseErrors
	it := trace.Iteration{
		Iter: info.Iter, Start: info.Start, End: info.End,
		Attempted: info.Attempted, Responded: info.Responded,
		ParseErrors: perrs,
	}
	s.d.Iterations = append(s.d.Iterations, it)
	s.tel.iterations.Inc()
	for _, t := range s.taps {
		if t.iter != nil {
			t.iter(it)
		}
	}
}

// CloneDataset deep-copies the accumulated dataset under the sink lock:
// the copy shares no slice storage with the live dataset, so the caller
// can freeze, analyse and serve it while the collector keeps committing.
// Sample/iteration/machine structs are copied by value (their string
// fields are immutable). The clone's samples are in commit order, not
// machine-sorted — freezing the clone sorts them, exactly as for a live
// dataset.
func (s *DatasetSink) CloneDataset() *trace.Dataset {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cloneLocked()
}

// cloneLocked is CloneDataset with the sink lock already held (the
// SnapshotEvery tap runs under it).
func (s *DatasetSink) cloneLocked() *trace.Dataset {
	return &trace.Dataset{
		Start:      s.d.Start,
		End:        s.d.End,
		Period:     s.d.Period,
		Machines:   append([]trace.MachineInfo(nil), s.d.Machines...),
		Iterations: append([]trace.Iteration(nil), s.d.Iterations...),
		Samples:    append([]trace.Sample(nil), s.d.Samples...),
	}
}

// SnapshotEvery registers a commit-path tap that clones the accumulated
// dataset after every k-th booked iteration (every ≤ 1 means every
// iteration) and hands the clone to fn. The clone is taken under the sink
// lock at an iteration boundary — all of that iteration's samples are
// committed, none of the next iteration's are — so each published dataset
// is exactly the committed prefix through its last iteration record: the
// copy-on-publish half of the query layer's snapshot isolation.
//
// fn runs on the collector's iteration goroutine while the sink lock is
// held: hand the clone off (publish a pointer, send on a channel) and
// return; do not analyse it inline. The returned detach removes the tap.
func (s *DatasetSink) SnapshotEvery(every int, fn func(*trace.Dataset)) (detach func()) {
	if s == nil || fn == nil {
		return func() {}
	}
	if every < 1 {
		every = 1
	}
	n := 0
	return s.Tap(nil, func(trace.Iteration) {
		n++
		if n%every != 0 {
			return
		}
		fn(s.cloneLocked())
	})
}

// Dataset returns the collected dataset. The last parse error, if any, is
// returned so callers cannot silently analyse a corrupted trace.
func (s *DatasetSink) Dataset() (*trace.Dataset, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d, s.lastErr
}

// LastParseError returns the most recent report parse failure, or nil if
// every report parsed. It is the live counterpart of the error Dataset
// returns at the end of a run.
func (s *DatasetSink) LastParseError() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}
