package ddc

import (
	"fmt"
	"sync"
	"time"

	"winlab/internal/probe"
	"winlab/internal/trace"
)

// DatasetSink is the standard post-collecting code: it parses every probe
// report and accumulates a trace.Dataset, exactly like the paper's Python
// post-collect extracted and stored the relevant metrics at the
// coordinator. It is safe for concurrent use (the TCP collector probes
// from multiple goroutines when configured to).
type DatasetSink struct {
	mu sync.Mutex
	d  *trace.Dataset

	// ParseErrors counts malformed reports (should stay zero; a non-zero
	// value indicates a probe/transport bug).
	ParseErrors int
	lastErr     error
}

// NewDatasetSink creates a sink collecting into a dataset with the given
// experiment bounds and sampling period.
func NewDatasetSink(start, end time.Time, period time.Duration, machines []trace.MachineInfo) *DatasetSink {
	return &DatasetSink{d: &trace.Dataset{
		Start:    start,
		End:      end,
		Period:   period,
		Machines: machines,
	}}
}

// Post is the PostCollect hook.
func (s *DatasetSink) Post(iter int, machineID string, stdout []byte, err error) {
	if err != nil {
		return // unreachable machine: no sample
	}
	sn, perr := probe.Parse(stdout)
	s.mu.Lock()
	defer s.mu.Unlock()
	if perr != nil {
		s.ParseErrors++
		s.lastErr = fmt.Errorf("machine %s: %w", machineID, perr)
		return
	}
	s.d.Samples = append(s.d.Samples, trace.FromSnapshot(iter, sn))
}

// OnIteration records per-iteration bookkeeping; wire it to the
// collector's OnIteration hook.
func (s *DatasetSink) OnIteration(info IterationInfo) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.d.Iterations = append(s.d.Iterations, trace.Iteration{
		Iter: info.Iter, Start: info.Start,
		Attempted: info.Attempted, Responded: info.Responded,
	})
}

// Dataset returns the collected dataset. The last parse error, if any, is
// returned so callers cannot silently analyse a corrupted trace.
func (s *DatasetSink) Dataset() (*trace.Dataset, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d, s.lastErr
}
