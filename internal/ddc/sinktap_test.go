package ddc

import (
	"fmt"
	"testing"
	"time"

	"winlab/internal/anomaly"
	"winlab/internal/machine"
	"winlab/internal/probe"
	"winlab/internal/sim"
	"winlab/internal/trace"
	"winlab/internal/trace/check"
)

// TestSinkTapChainObservesEveryCommit is the tap-chain acceptance test:
// with the streaming checker AND two plain taps attached to one sink,
// every committed sample and every iteration record reaches every
// observer exactly once, in attachment order.
func TestSinkTapChainObservesEveryCommit(t *testing.T) {
	src := multiSource{ms: map[string]*machine.Machine{}}
	for _, id := range []string{"M1", "M2", "M3"} {
		m := newMachine(id)
		m.PowerOn(t0.Add(-time.Hour))
		src.ms[id] = m
	}

	eng := sim.New(t0)
	end := t0.Add(61 * time.Minute)
	sink := NewDatasetSink(t0, end, 15*time.Minute, nil)
	sc := AttachCheck(sink, check.Options{}, nil)

	type tapLog struct {
		samples map[string]int // "iter/machine" → times seen
		iters   map[int]int    // iteration → times seen
	}
	newLog := func() *tapLog {
		return &tapLog{samples: map[string]int{}, iters: map[int]int{}}
	}
	logs := []*tapLog{newLog(), newLog()}
	var order []int // tap index per sample observation, in call order
	for i, lg := range logs {
		i, lg := i, lg
		sink.Tap(func(s *trace.Sample) {
			lg.samples[fmt.Sprintf("%d/%s", s.Iter, s.Machine)]++
			order = append(order, i)
		}, func(it trace.Iteration) {
			lg.iters[it.Iter]++
		})
	}

	coll := &SimCollector{
		Cfg: Config{
			Machines:    []string{"M1", "M2", "M3"},
			Period:      15 * time.Minute,
			LatencyOK:   func() time.Duration { return time.Second },
			LatencyFail: func() time.Duration { return 4 * time.Second },
		},
		Exec: &Direct{Source: src, Now: eng.Now},
		Post: sink.Post,
	}
	coll.OnIteration = sink.OnIteration
	if err := coll.Install(eng, t0, end); err != nil {
		t.Fatal(err)
	}
	eng.Run()

	ds, err := sink.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Samples) == 0 || len(ds.Iterations) == 0 {
		t.Fatalf("degenerate collection: %d samples, %d iterations", len(ds.Samples), len(ds.Iterations))
	}
	for ti, lg := range logs {
		if len(lg.samples) != len(ds.Samples) {
			t.Errorf("tap %d saw %d distinct samples, dataset has %d", ti, len(lg.samples), len(ds.Samples))
		}
		for key, n := range lg.samples {
			if n != 1 {
				t.Errorf("tap %d saw sample %s %d times, want exactly once", ti, key, n)
			}
		}
		if len(lg.iters) != len(ds.Iterations) {
			t.Errorf("tap %d saw %d iterations, dataset has %d", ti, len(lg.iters), len(ds.Iterations))
		}
		for it, n := range lg.iters {
			if n != 1 {
				t.Errorf("tap %d saw iteration %d %d times, want exactly once", ti, it, n)
			}
		}
	}
	// Attachment order: per committed sample the taps fire 0 then 1.
	if len(order)%2 != 0 {
		t.Fatalf("odd observation count %d across two taps", len(order))
	}
	for i := 0; i < len(order); i += 2 {
		if order[i] != 0 || order[i+1] != 1 {
			t.Fatalf("taps fired out of attachment order at observation %d: %v", i, order[i:i+2])
		}
	}
	// The checker composed with the taps must still have seen everything.
	if r := sc.Report(); r.Samples != len(ds.Samples) {
		t.Errorf("checker saw %d samples, want %d", r.Samples, len(ds.Samples))
	}
}

// TestSinkTapDetach verifies detach removes exactly one tap, keeps the
// remaining taps' relative order, and is idempotent.
func TestSinkTapDetach(t *testing.T) {
	sink := NewDatasetSink(t0, t0.Add(time.Hour), 15*time.Minute, nil)
	m := newMachine("M1")
	m.PowerOn(t0)
	report := probe.Render(mustSnapshot(t, m, t0.Add(10*time.Minute)))

	var calls []string
	tap := func(name string) func(*trace.Sample) {
		return func(*trace.Sample) { calls = append(calls, name) }
	}
	detachA := sink.Tap(tap("A"), nil)
	sink.Tap(tap("B"), nil)
	sink.Tap(tap("C"), nil)

	sink.Post(0, "M1", report, nil)
	if got := fmt.Sprint(calls); got != "[A B C]" {
		t.Fatalf("initial call order %s, want [A B C]", got)
	}

	calls = nil
	detachA()
	detachA() // idempotent
	sink.Post(1, "M1", report, nil)
	if got := fmt.Sprint(calls); got != "[B C]" {
		t.Fatalf("after detach call order %s, want [B C]", got)
	}
}

// TestSinkTapEmptyAllocFree guards the disabled path: with no taps
// attached (including after an attach/detach round trip) the commit path
// allocates nothing per probe, same contract as the detached checker.
func TestSinkTapEmptyAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun counts race-detector bookkeeping allocations")
	}
	sink := NewDatasetSink(t0, t0.Add(time.Hour), 15*time.Minute, nil)
	detach := sink.Tap(func(*trace.Sample) {}, nil)
	detach()
	func() {
		sink.mu.Lock()
		defer sink.mu.Unlock()
		sink.d.Samples = make([]trace.Sample, 0, 4096)
	}()

	m := newMachine("M1")
	m.PowerOn(t0)
	report := probe.Render(mustSnapshot(t, m, t0.Add(10*time.Minute)))
	if allocs := testing.AllocsPerRun(200, func() {
		sink.Post(0, "M1", report, nil)
	}); allocs != 0 {
		t.Errorf("tapless sink Post allocates %.1f objects/run, want 0", allocs)
	}
}

// BenchmarkSinkCommitWithDetectors measures the probe commit path with
// the full streaming-detector suite tapped in — the steady-state cost a
// live deployment pays for online detection on top of the tapless
// zero-alloc commit (TestSinkTapEmptyAllocFree pins the baseline).
func BenchmarkSinkCommitWithDetectors(b *testing.B) {
	infos := []trace.MachineInfo{{ID: "M1", Lab: "L01"}}
	sink := NewDatasetSink(t0, t0.Add(1000*time.Hour), 15*time.Minute, infos)
	det := anomaly.New(anomaly.DefaultConfig(), nil)
	det.SetMachines(infos)
	sink.Tap(det.Sample, det.Iteration)

	m := newMachine("M1")
	m.PowerOn(t0)
	sn, ok := m.Snapshot(t0.Add(10 * time.Minute))
	if !ok {
		b.Fatal("machine unreachable")
	}
	report := probe.Render(sn)
	func() {
		sink.mu.Lock()
		defer sink.mu.Unlock()
		sink.d.Samples = make([]trace.Sample, 0, b.N+1)
	}()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink.Post(i, "M1", report, nil)
	}
}
