package ddc

import (
	"winlab/internal/telemetry"
	"winlab/internal/trace"
	"winlab/internal/trace/check"
)

// SinkCheck is the opt-in streaming trace validator attached to a
// DatasetSink: every sample and iteration record the sink commits is
// pushed through a check.Stream while the sink lock is held, so
// invariant violations (counter regressions, duplicate samples,
// misaligned iterations, accounting mismatches …) surface the moment
// the collector books the bad data instead of days later in an analysis
// artefact.
//
// The wrapper is opt-in and nil-safe in both directions:
//
//   - a sink without an attached checker pays exactly one nil check per
//     commit and stays allocation-free
//     (TestSinkCheckDetachedAllocFree);
//   - a nil *SinkCheck answers Report/Err like a clean checker, so
//     callers can thread the handle through unconditionally.
//
// With a telemetry registry attached, the checker exports
// sink_checked_samples_total and sink_invariant_violations_total, so a
// live /metrics scrape shows data corruption as it happens.
type SinkCheck struct {
	sink       *DatasetSink
	stream     *check.Stream
	detach     func()             // removes this checker's tap from the sink chain
	checked    *telemetry.Counter // nil-safe when uninstrumented
	violations *telemetry.Counter
}

// AttachCheck wires a streaming invariant checker into the sink and
// returns the handle for reading the verdict. The checker inherits the
// sink's experiment bounds and period. A nil sink returns a nil handle
// (which is itself safe to use); a nil registry keeps the checker
// unexported from telemetry. Attach before collection starts — the
// stream wants to see every commit from the first iteration on.
func AttachCheck(s *DatasetSink, opts check.Options, reg *telemetry.Registry) *SinkCheck {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	start, end, period := s.d.Start, s.d.End, s.d.Period
	s.mu.Unlock()
	sc := &SinkCheck{
		sink:   s,
		stream: check.NewStream(start, end, period, opts),
	}
	if reg != nil {
		sc.checked = reg.Counter(MetricSinkChecked)
		sc.violations = reg.Counter(MetricSinkViolations)
	}
	sc.detach = s.Tap(sc.sample, sc.iteration)
	return sc
}

// Detach unhooks the checker's tap from its sink; other taps on the same
// sink are unaffected and the accumulated report remains readable. Safe
// on nil and idempotent.
func (c *SinkCheck) Detach() {
	if c == nil {
		return
	}
	c.detach()
}

// sample observes one committed sample; called under the sink lock.
func (c *SinkCheck) sample(s *trace.Sample) {
	c.checked.Inc()
	if n := c.stream.Sample(s); n > 0 {
		c.violations.Add(int64(n))
	}
}

// iteration observes one booked iteration record; called under the sink
// lock.
func (c *SinkCheck) iteration(it trace.Iteration) {
	if n := c.stream.Iteration(it); n > 0 {
		c.violations.Add(int64(n))
	}
}

// Report returns a snapshot of the accumulated violation report. Safe
// on nil (returns an empty, OK report).
func (c *SinkCheck) Report() *check.Report {
	if c == nil {
		return &check.Report{}
	}
	c.sink.mu.Lock()
	defer c.sink.mu.Unlock()
	live := c.stream.Report()
	snap := *live
	snap.Violations = append([]check.Violation(nil), live.Violations...)
	return &snap
}

// Err returns nil when no invariant was violated, otherwise an error
// naming the first violation and the total count. Safe on nil.
func (c *SinkCheck) Err() error {
	return c.Report().Err()
}
