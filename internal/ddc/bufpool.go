package ddc

import (
	"bufio"
	"io"
	"sync"
)

// Report buffer pool — the collection loop's scratch memory.
//
// Every probe needs one byte buffer to render (agent side) or receive
// (coordinator side) a report, and the steady-state loop runs hundreds
// of thousands of probes. Pooling the buffers (instead of allocating per
// probe) is what, together with probe.AppendRender / Parser.ParseBytes,
// makes the per-sample path allocation-free.
//
// Ownership rule: a buffer obtained from the pool is owned by exactly
// one goroutine until putReportBuf returns it. Report slices handed to
// PostCollect/PrepareCollect alias the buffer and die when the hook
// returns — see the PostCollect lifetime contract in ddc.go.

// reportBufCap seeds new pool buffers with enough capacity for a typical
// W32Probe report (~600 bytes) without a growth copy.
const reportBufCap = 1024

// reportBuf wraps the slice so the pool stores pointers (flagged by vet
// otherwise) and re-pooled growth survives.
type reportBuf struct{ b []byte }

var reportBufPool = sync.Pool{
	New: func() any { return &reportBuf{b: make([]byte, 0, reportBufCap)} },
}

// PoisonBuffers is the pool's use-after-put tripwire. When true, every
// buffer returned to the pool is first overwritten with poisonByte up to
// its full capacity, so any consumer that illegally retained a slice
// aliasing a recycled buffer (violating the PostCollect lifetime
// contract) reads 0xDB garbage instead of silently reading a newer
// probe's report — turning a heisenbug into a deterministic test
// failure. The ddc test binary enables it for the whole package run
// (TestMain); production leaves it off, keeping putReportBuf free.
//
// Flip it only while no collection is in flight — it is read without
// synchronisation on the put path.
var PoisonBuffers = false

// poisonByte fills returned buffers under PoisonBuffers. 0xDB ("dead
// buffer") is outside the report codec's alphabet, so a poisoned read
// can never parse as a valid report.
const poisonByte = 0xDB

// getReportBuf fetches an empty buffer from the pool.
func getReportBuf() *reportBuf {
	rb := reportBufPool.Get().(*reportBuf)
	rb.b = rb.b[:0]
	return rb
}

// putReportBuf returns a buffer to the pool. The caller must not touch
// rb (or any slice aliasing rb.b) afterwards — under PoisonBuffers the
// contents are destroyed right here.
func putReportBuf(rb *reportBuf) {
	if PoisonBuffers {
		full := rb.b[:cap(rb.b)]
		for i := range full {
			full[i] = poisonByte
		}
	}
	reportBufPool.Put(rb)
}

// connReaderPool pools the bufio.Readers the TCP transport wraps around
// connections — the agent and the executor each used to allocate a fresh
// 4 KB reader per probe.
var connReaderPool = sync.Pool{
	New: func() any { return bufio.NewReaderSize(nil, 4096) },
}

// getConnReader rents a bufio.Reader positioned on r.
func getConnReader(r io.Reader) *bufio.Reader {
	br := connReaderPool.Get().(*bufio.Reader)
	br.Reset(r)
	return br
}

// putConnReader returns a reader to the pool, dropping its reference to
// the underlying connection.
func putConnReader(br *bufio.Reader) {
	br.Reset(nil)
	connReaderPool.Put(br)
}
