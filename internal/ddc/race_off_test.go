//go:build !race

package ddc

// raceEnabled reports whether the test binary was built with the race
// detector. Allocation-count guards skip under it: race instrumentation
// adds bookkeeping allocations that testing.AllocsPerRun cannot tell
// apart from real ones.
const raceEnabled = false
