// Package ddc reimplements the paper's Distributed Data Collector (§3): a
// central coordinator that periodically executes a software probe on every
// machine of a set, captures the probe's standard output and feeds it to
// post-collecting code.
//
// The remote-execution mechanism is abstracted behind Executor. Two
// implementations exist: Direct (in-process against the simulated fleet,
// the moral equivalent of psexec inside the simulation) and TCPExecutor
// (a real network transport against probe agents, see tcpx.go).
package ddc

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// ErrUnreachable is returned by an Executor when the target machine did
// not respond — powered off, or the remote-execution timed out.
var ErrUnreachable = errors.New("ddc: machine unreachable")

// ErrBreakerOpen is reported to the post-collect hook for machines the
// collector skipped because their circuit breaker is open. It wraps
// ErrUnreachable so existing error handling keeps treating the machine as
// down.
var ErrBreakerOpen = fmt.Errorf("%w: breaker open, probe skipped", ErrUnreachable)

// Executor runs the probe binary on a remote machine and returns its
// standard output.
type Executor interface {
	Exec(machineID string) (stdout []byte, err error)
}

// ContextExecutor is an Executor whose probes honour context cancellation
// and deadlines — the context-aware variant the hardened collector uses to
// enforce per-probe deadlines. Executors that do not implement it are
// driven through plain Exec and cannot be cancelled mid-probe.
type ContextExecutor interface {
	Executor
	ExecContext(ctx context.Context, machineID string) (stdout []byte, err error)
}

// AppendExecutor is an Executor that can render the probe report into a
// caller-supplied buffer: ExecAppend appends the report to dst and
// returns the extended slice, allocating only when dst lacks capacity.
// Collectors that drive this path reuse one buffer per worker, which is
// what makes the steady-state collection loop allocation-free — but it
// changes the lifetime contract: the returned bytes alias dst, so the
// caller must fully consume them (parse, copy, hash) before reusing the
// buffer. The PostCollect/PrepareCollect hooks inherit the same rule:
// stdout passed to them is only valid for the duration of the call when
// the collector pools buffers.
type AppendExecutor interface {
	Executor
	ExecAppend(dst []byte, machineID string) (stdout []byte, err error)
}

// ProbeJob is the deferred half of a probe execution: everything
// time-sensitive (snapshotting the target's state at the scheduled
// instant) has already happened, and calling the job performs the
// remaining pure work — rendering the report bytes. Jobs are independent
// and safe to run concurrently with one another.
type ProbeJob func() []byte

// AppendProbeJob is ProbeJob's buffer-reusing variant: it appends the
// report to dst and returns the extended slice. The same aliasing rule
// as ExecAppend applies.
type AppendProbeJob func(dst []byte) []byte

// AppendDeferredExecutor pairs DeferredExecutor with the append codec:
// BeginAppend snapshots now and returns a render job that writes into a
// caller-supplied buffer later.
type AppendDeferredExecutor interface {
	DeferredExecutor
	BeginAppend(machineID string) (AppendProbeJob, error)
}

// DeferredExecutor is implemented by executors whose probe splits into a
// cheap, order-sensitive scheduling step and a pure rendering step. Begin
// runs the scheduling step now (capturing machine state at the current
// instant) and returns the render job, or an error when the machine is
// unreachable. The collector may then execute the returned jobs on worker
// goroutines without perturbing probe timing, which is what makes the
// parallel collection path bit-identical to the sequential one.
type DeferredExecutor interface {
	Executor
	Begin(machineID string) (ProbeJob, error)
}

// PrepareCollect is the two-phase variant of PostCollect for sinks that
// can split their per-probe work into a pure parse phase and a mutating
// commit phase. The function itself may be called concurrently across a
// single iteration's probes (it must only touch the arguments and
// synchronised state); the commit closures it returns are invoked
// serially in machine order, exactly like plain PostCollect calls, so
// sink state mutates in the same deterministic order either way.
type PrepareCollect func(iter int, machineID string, stdout []byte, err error) (commit func())

// execProbe runs one probe through e, using the context-aware path when
// the executor supports it.
func execProbe(ctx context.Context, e Executor, machineID string) ([]byte, error) {
	if ce, ok := e.(ContextExecutor); ok {
		return ce.ExecContext(ctx, machineID)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrUnreachable, machineID, err)
	}
	return e.Exec(machineID)
}

// PostCollect is the coordinator-side hook run after every probe attempt,
// successful or not — the paper's "post-collecting code". stdout is nil
// when err is non-nil.
//
// Lifetime: stdout is only guaranteed valid for the duration of the call.
// Collectors driving an AppendExecutor reuse the underlying buffer for
// the next probe, so hooks must parse or copy, never retain the slice
// (DatasetSink parses immediately and retains nothing).
type PostCollect func(iter int, machineID string, stdout []byte, err error)

// IterationInfo describes one finished collector iteration, including the
// collection-health counters accumulated while running it. Attempted and
// Responded mirror the paper's per-iteration bookkeeping; the remaining
// fields expose the hardened collector's retry/breaker machinery (always
// zero for SimCollector, which models the paper's retry-free coordinator).
type IterationInfo struct {
	Iter      int
	Start     time.Time
	End       time.Time // when the iteration's sweep finished (sim or wall clock)
	Attempted int       // machines scheduled this iteration
	Responded int       // machines that yielded a report

	Probes         int // probe executions, including retries
	Retries        int // probe executions beyond each machine's first try
	BreakerSkipped int // machines skipped because their breaker was open
	BreakerOpen    int // machines whose breaker is open after the iteration
}

// Elapsed returns the iteration's sweep duration (End − Start), or zero
// when either endpoint is unset.
func (i IterationInfo) Elapsed() time.Duration {
	if i.Start.IsZero() || i.End.IsZero() {
		return 0
	}
	return i.End.Sub(i.Start)
}

// IterationFunc is the per-iteration hook shared by both collectors.
type IterationFunc func(info IterationInfo)

// Config configures a collector run.
type Config struct {
	Machines []string      // probe targets, probed sequentially in order
	Period   time.Duration // iteration period (the paper used 15 minutes)

	// Probe pacing: how long one remote execution takes. DDC probes
	// sequentially, so these latencies spread an iteration's samples over
	// several minutes, exactly like the paper's coordinator did.
	LatencyOK   func() time.Duration // successful execution
	LatencyFail func() time.Duration // timeout on an unreachable machine

	// Outages: intervals during which the coordinator is down. Iterations
	// whose start falls inside an outage are skipped entirely (the paper
	// ran 6883 of the 7392 possible iterations).
	Outages []Outage
}

// Outage is a coordinator downtime window.
type Outage struct {
	Start, End time.Time
}

// Contains reports whether t falls inside the outage.
func (o Outage) Contains(t time.Time) bool {
	return !t.Before(o.Start) && t.Before(o.End)
}

// Stats summarises a collector run.
type Stats struct {
	Iterations int
	Skipped    int // iterations lost to coordinator outages
	Attempts   int // probe executions, including retries
	Samples    int

	// Collection-health counters (populated by WallCollector; SimCollector
	// models the paper's retry-free coordinator and leaves them zero).
	Retries        int // probe executions beyond each machine's first try
	BreakerSkipped int // machine-iterations skipped by an open breaker
	BreakerOpens   int // closed→open breaker transitions

	// Machines holds per-machine health at the end of the run, keyed by
	// machine ID. Nil when the collector tracks no per-machine health.
	Machines map[string]MachineHealth
}

// MachineHealth is the per-machine view of collection health.
type MachineHealth struct {
	Attempts    int  // probe executions against this machine, incl. retries
	Retries     int  // executions beyond the first try of each iteration
	Failures    int  // iterations whose probe (after retries) failed
	ConsecFails int  // current consecutive failed iterations
	BreakerOpen bool // breaker currently open
}

// Validate checks a configuration for the mistakes that otherwise surface
// as confusing scheduling behaviour.
func (c *Config) Validate() error {
	if len(c.Machines) == 0 {
		return fmt.Errorf("ddc: no machines configured")
	}
	if c.Period <= 0 {
		return fmt.Errorf("ddc: non-positive period %v", c.Period)
	}
	for _, o := range c.Outages {
		if !o.End.After(o.Start) {
			return fmt.Errorf("ddc: outage ends (%v) before it starts (%v)", o.End, o.Start)
		}
	}
	return nil
}

func (c *Config) inOutage(t time.Time) bool {
	for _, o := range c.Outages {
		if o.Contains(t) {
			return true
		}
	}
	return false
}

func (c *Config) latOK() time.Duration {
	if c.LatencyOK != nil {
		return c.LatencyOK()
	}
	return 1500 * time.Millisecond
}

func (c *Config) latFail() time.Duration {
	if c.LatencyFail != nil {
		return c.LatencyFail()
	}
	return 4 * time.Second
}
