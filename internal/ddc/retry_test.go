package ddc

import (
	"context"
	"errors"
	"testing"
	"time"

	"winlab/internal/rng"
)

func TestRetryPolicyBackoff(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 40 * time.Millisecond}
	want := []time.Duration{10, 20, 40, 40, 40}
	for i, w := range want {
		if got := p.backoff(i, nil); got != w*time.Millisecond {
			t.Errorf("backoff(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
	// Defaults when unset.
	d := RetryPolicy{MaxAttempts: 2}
	if got := d.backoff(0, nil); got != 50*time.Millisecond {
		t.Errorf("default base backoff = %v", got)
	}
	// Deep retries must not overflow the shift.
	if got := p.backoff(200, nil); got != 40*time.Millisecond {
		t.Errorf("deep backoff = %v, want cap", got)
	}
}

func TestRetryPolicyJitterDeterministicAndBounded(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 3, BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second, Jitter: 0.5}
	a, b := rng.Derive(7, "j"), rng.Derive(7, "j")
	for i := 0; i < 50; i++ {
		da, db := p.backoff(i%3, a), p.backoff(i%3, b)
		if da != db {
			t.Fatalf("jittered backoff diverged at draw %d: %v vs %v", i, da, db)
		}
		base := p.backoff(i%3, nil)
		lo := time.Duration(float64(base) * 0.5)
		hi := time.Duration(float64(base) * 1.5)
		if da < lo || da > hi {
			t.Errorf("jittered backoff %v outside [%v, %v]", da, lo, hi)
		}
	}
}

// TestRetriesRecoverTransientFailures is the deterministic fault-injection
// acceptance test: with seeded 20% transient probe failures, the
// retries-enabled collector gathers strictly more samples than the
// paper-faithful single-attempt baseline.
func TestRetriesRecoverTransientFailures(t *testing.T) {
	machines := []string{"M1", "M2", "M3", "M4"}
	up := map[string]bool{"M1": true, "M2": true, "M3": true, "M4": true}
	const iters = 25 // 100 machine-iterations
	run := func(retry RetryPolicy) Stats {
		fx := &FaultExecutor{
			Inner:          &fakeExec{up: up},
			TransientFailP: 0.2,
			Seed:           42,
		}
		st, err := (&WallCollector{
			Cfg:   Config{Machines: machines, Period: time.Millisecond},
			Exec:  fx,
			Retry: retry,
		}).Run(iters, nil)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	withRetry := RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond, Jitter: 0.5, Seed: 1}

	plain := run(RetryPolicy{})
	retried := run(withRetry)
	if plain.Samples >= len(machines)*iters {
		t.Fatalf("fault injection inactive: baseline %+v", plain)
	}
	if plain.Retries != 0 || plain.Attempts != len(machines)*iters {
		t.Errorf("baseline retried: %+v", plain)
	}
	if retried.Samples <= plain.Samples {
		t.Errorf("retries did not help: %d samples vs baseline %d", retried.Samples, plain.Samples)
	}
	if retried.Retries == 0 || retried.Attempts <= len(machines)*iters {
		t.Errorf("retry accounting: %+v", retried)
	}
	// The whole injection + backoff schedule is seeded: re-running is
	// bit-identical.
	again := run(withRetry)
	if again.Samples != retried.Samples || again.Attempts != retried.Attempts || again.Retries != retried.Retries {
		t.Errorf("seeded run not reproducible: %+v vs %+v", again, retried)
	}
}

// TestBreakerCapsHardDownAttempts checks the circuit breaker's whole point:
// a machine that is hard-down stops consuming a full retry budget every
// iteration, while healthy machines are unaffected.
func TestBreakerCapsHardDownAttempts(t *testing.T) {
	const iters = 20
	var breakerErrs int
	run := func(br BreakerPolicy) Stats {
		fx := &FaultExecutor{
			Inner:        &fakeExec{up: map[string]bool{"M1": true}},
			DownMachines: map[string]bool{"M2": true},
		}
		breakerErrs = 0
		st, err := (&WallCollector{
			Cfg:     Config{Machines: []string{"M1", "M2"}, Period: time.Millisecond},
			Exec:    fx,
			Retry:   RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond},
			Breaker: br,
			Post: func(iter int, id string, out []byte, err error) {
				if errors.Is(err, ErrBreakerOpen) {
					breakerErrs++
				}
			},
		}).Run(iters, nil)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	flat := run(BreakerPolicy{})
	if got := flat.Machines["M2"].Attempts; got != iters*3 {
		t.Fatalf("no-breaker attempts against M2 = %d, want %d", got, iters*3)
	}

	st := run(BreakerPolicy{FailThreshold: 2, ProbeEvery: 4})
	// Probed at iterations 0 and 1 (opens after the 2nd consecutive
	// failure), then once every 4: 5, 9, 13, 17 — six probed iterations.
	m2 := st.Machines["M2"]
	if m2.Attempts != 6*3 {
		t.Errorf("breaker attempts against M2 = %d, want 18", m2.Attempts)
	}
	if m2.Attempts >= flat.Machines["M2"].Attempts {
		t.Errorf("breaker did not cap attempts: %d vs %d", m2.Attempts, flat.Machines["M2"].Attempts)
	}
	if !m2.BreakerOpen || m2.ConsecFails != 6 || m2.Failures != 6 {
		t.Errorf("M2 health = %+v", m2)
	}
	if st.BreakerOpens != 1 || st.BreakerSkipped != iters-6 {
		t.Errorf("breaker stats: opens=%d skipped=%d", st.BreakerOpens, st.BreakerSkipped)
	}
	if breakerErrs != iters-6 {
		t.Errorf("post-collect saw %d breaker skips, want %d", breakerErrs, iters-6)
	}
	// The healthy machine is untouched by M2's breaker.
	if m1 := st.Machines["M1"]; m1.Attempts != iters || m1.Failures != 0 || m1.BreakerOpen {
		t.Errorf("M1 health = %+v", m1)
	}
	if st.Samples != iters {
		t.Errorf("samples = %d, want %d (M1 every iteration)", st.Samples, iters)
	}
}

// recoveringExec fails its first n probes, then succeeds forever.
type recoveringExec struct{ remaining int }

func (r *recoveringExec) Exec(id string) ([]byte, error) {
	if r.remaining > 0 {
		r.remaining--
		return nil, ErrUnreachable
	}
	return []byte("data:" + id), nil
}

func TestBreakerClosesOnRecovery(t *testing.T) {
	st, err := (&WallCollector{
		Cfg:     Config{Machines: []string{"M1"}, Period: time.Millisecond},
		Exec:    &recoveringExec{remaining: 4},
		Breaker: BreakerPolicy{FailThreshold: 2, ProbeEvery: 3},
	}).Run(14, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Probed at 0, 1 (opens), then 4, 7 (still failing), then 10 — which
	// succeeds and closes the breaker — then 11, 12, 13.
	m := st.Machines["M1"]
	if m.BreakerOpen || m.ConsecFails != 0 {
		t.Errorf("breaker did not close on recovery: %+v", m)
	}
	if st.Samples != 4 { // iterations 10–13
		t.Errorf("samples = %d, want 4", st.Samples)
	}
	if m.Attempts != 8 {
		t.Errorf("attempts = %d, want 8", m.Attempts)
	}
	if st.BreakerSkipped != 6 { // iterations 2, 3, 5, 6, 8, 9
		t.Errorf("skipped = %d, want 6", st.BreakerSkipped)
	}
}

func TestProbeTimeoutBoundsSlowAgent(t *testing.T) {
	run := func(timeout time.Duration) Stats {
		fx := &FaultExecutor{
			Inner:        &fakeExec{up: map[string]bool{"S": true}},
			SlowMachines: map[string]time.Duration{"S": 150 * time.Millisecond},
		}
		st, err := (&WallCollector{
			Cfg:          Config{Machines: []string{"S"}, Period: time.Millisecond},
			Exec:         fx,
			ProbeTimeout: timeout,
		}).Run(2, nil)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	if st := run(20 * time.Millisecond); st.Samples != 0 {
		t.Errorf("deadline did not bound the slow agent: %+v", st)
	}
	if st := run(0); st.Samples != 2 {
		t.Errorf("slow agent unreachable without deadline: %+v", st)
	}
}

func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := (&WallCollector{
		Cfg:  Config{Machines: []string{"M1"}, Period: time.Hour},
		Exec: &fakeExec{up: map[string]bool{"M1": true}},
	}).RunContext(ctx, 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations != 1 {
		t.Errorf("iterations = %d, want 1 (cancelled)", st.Iterations)
	}
	if st.Samples != 0 {
		t.Errorf("cancelled context still sampled: %+v", st)
	}
}
