package anomaly

import (
	"testing"
	"time"

	"winlab/internal/telemetry"
	"winlab/internal/trace"
)

// testStart is a Monday 00:00, matching the experiment default.
var testStart = time.Date(2003, 10, 6, 0, 0, 0, 0, time.UTC)

const testPeriod = 15 * time.Minute

// fleet8 is one 8-machine lab.
func fleet8() []trace.MachineInfo {
	out := make([]trace.MachineInfo, 8)
	for i := range out {
		out[i] = trace.MachineInfo{ID: machID(i), Lab: "L01", DiskGB: 74.5}
	}
	return out
}

func machID(i int) string { return "L01-M0" + string(rune('1'+i)) }

func iterTime(iter int) time.Time { return testStart.Add(time.Duration(iter) * testPeriod) }

// healthySample builds an unremarkable sample for machine id at iter:
// booted this morning, counters advancing at wall rate.
func healthySample(id string, iter int) trace.Sample {
	t := iterTime(iter)
	boot := testStart.Add(-time.Hour) // one stable boot across the whole feed
	up := t.Sub(boot)
	return trace.Sample{
		Iter: iter, Time: t, Machine: id, Lab: "L01",
		BootTime: boot, Uptime: up, CPUIdle: up / 2,
		MemLoadPct: 50, SwapLoadPct: 40, DiskGB: 74.5, FreeDiskGB: 50,
		PowerCycles: 1000, PowerOnHours: 5000 + int64(up/time.Hour),
	}
}

func eventsOf(d *Detectors, kind Kind) []Event {
	var out []Event
	for _, e := range d.Ring().Snapshot() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// TestDetectSensorStaleness: a machine that answers probes with
// bit-frozen Uptime and CPUIdle for StaleConfirm consecutive samples is
// flagged exactly once; a machine whose counters advance is not.
func TestDetectSensorStaleness(t *testing.T) {
	d := New(DefaultConfig(), nil)
	d.SetMachines(fleet8())

	frozen := healthySample("L01-M01", 40)
	for iter := 40; iter < 48; iter++ {
		s := frozen
		s.Iter = iter
		s.Time = iterTime(iter)
		d.Sample(&s) // uptime/idle never advance
		h := healthySample("L01-M02", iter)
		d.Sample(&h)
	}
	got := eventsOf(d, KindSensorStaleness)
	if len(got) != 1 {
		t.Fatalf("staleness events = %d, want exactly 1 (no re-emission): %+v", len(got), got)
	}
	e := got[0]
	if e.Machine != "L01-M01" || e.Lab != "L01" {
		t.Errorf("event attribution %q/%q", e.Machine, e.Lab)
	}
	if e.FirstIter != 41 || e.LastIter != 43 {
		t.Errorf("evidence window [%d,%d], want [41,43]", e.FirstIter, e.LastIter)
	}
}

// TestDetectSMARTRegressionAndJump: a power-cycle regression and a jump
// both emit point events; the cooldown mutes the immediate aftermath.
func TestDetectSMARTRegressionAndJump(t *testing.T) {
	d := New(DefaultConfig(), nil)
	d.SetMachines(fleet8())

	for iter := 10; iter < 14; iter++ {
		s := healthySample("L01-M01", iter)
		if iter >= 12 {
			s.PowerCycles -= 50 // counter snapped backwards
		}
		d.Sample(&s)

		j := healthySample("L01-M02", iter)
		if iter >= 12 {
			j.PowerCycles += 500
		}
		d.Sample(&j)
	}
	reg := eventsOf(d, KindSMARTAnomaly)
	if len(reg) != 2 {
		t.Fatalf("smart events = %d, want 2 (one per machine, cooldown mutes repeats): %+v", len(reg), reg)
	}
	byMachine := map[string]Event{}
	for _, e := range reg {
		byMachine[e.Machine] = e
	}
	if e := byMachine["L01-M01"]; e.Score != 50 {
		t.Errorf("regression score = %v, want 50", e.Score)
	}
	if e := byMachine["L01-M02"]; e.Score != 500 {
		t.Errorf("jump score = %v, want 500", e.Score)
	}
}

// TestDetectRebootStorm: three boot-time changes within the window flag
// the machine; a single reboot does not.
func TestDetectRebootStorm(t *testing.T) {
	d := New(DefaultConfig(), nil)
	d.SetMachines(fleet8())

	for iter := 20; iter < 28; iter++ {
		s := healthySample("L01-M01", iter)
		s.BootTime = iterTime(iter).Add(-90 * time.Second) // fresh boot every probe
		s.Uptime = 90 * time.Second
		d.Sample(&s)

		once := healthySample("L01-M02", iter)
		if iter >= 24 {
			once.BootTime = iterTime(24) // exactly one reboot
			once.Uptime = once.Time.Sub(once.BootTime)
		}
		d.Sample(&once)
	}
	storms := eventsOf(d, KindRebootStorm)
	if len(storms) != 1 {
		t.Fatalf("storm events = %d, want 1: %+v", len(storms), storms)
	}
	if storms[0].Machine != "L01-M01" {
		t.Errorf("storm flagged %q, want L01-M01", storms[0].Machine)
	}
}

// TestDetectUsageDrift: after the Welford warmup a sustained memory
// regime shift emits once; the out-of-regime samples must not feed the
// baseline (the event's recorded baseline stays at the pre-shift mean).
func TestDetectUsageDrift(t *testing.T) {
	d := New(DefaultConfig(), nil)
	d.SetMachines(fleet8())
	cfg := DefaultConfig()

	iter := 0
	for ; iter < cfg.DriftWarmupSamples+2; iter++ {
		s := healthySample("L01-M01", iter)
		d.Sample(&s)
	}
	for n := 0; n < 8; n, iter = n+1, iter+1 {
		s := healthySample("L01-M01", iter)
		s.MemLoadPct = 97
		d.Sample(&s)
	}
	drifts := eventsOf(d, KindUsageDrift)
	if len(drifts) != 1 {
		t.Fatalf("drift events = %d, want exactly 1: %+v", len(drifts), drifts)
	}
	// (97-50)/max(sd,4) with sd→0 floors at 4: z = 11.75.
	if z := drifts[0].Score; z < 11 || z > 12.5 {
		t.Errorf("drift z = %v, want ≈ 11.75 against the unpolluted baseline", z)
	}
}

// TestDetectAvailabilityCollapse drives the per-lab iteration path: warm
// the seasonal bins and the recent level with three weekdays of full
// availability at a fixed slot, then blackout the lab. The collapse must
// confirm after CollapseConfirm low iterations and emit once; telemetry
// counters must agree with the ring.
func TestDetectAvailabilityCollapse(t *testing.T) {
	reg := telemetry.NewRegistry()
	d := New(DefaultConfig(), reg)
	d.SetMachines(fleet8())

	iterAt := func(day, slot int) (int, time.Time) {
		at := testStart.AddDate(0, 0, day).Add(12*time.Hour + time.Duration(slot)*testPeriod)
		return int(at.Sub(testStart) / testPeriod), at
	}
	feed := func(day, slot, responding int) {
		iter, at := iterAt(day, slot)
		for i := 0; i < responding; i++ {
			s := healthySample(machID(i), iter)
			d.Sample(&s)
		}
		d.Iteration(trace.Iteration{Iter: iter, Start: at, Attempted: 8, Responded: responding})
	}
	// Monday–Wednesday noon: everything up. Each (day-class, slot) bin
	// accumulates 3 observations — exactly the warmup.
	for day := 0; day < 3; day++ {
		for slot := 0; slot < 4; slot++ {
			feed(day, slot, 8)
		}
	}
	// Thursday: the lab vanishes.
	for slot := 0; slot < 4; slot++ {
		feed(3, slot, 0)
	}
	got := eventsOf(d, KindAvailabilityCollapse)
	if len(got) != 1 {
		t.Fatalf("collapse events = %d, want exactly 1: %+v", len(got), got)
	}
	e := got[0]
	firstLow, _ := iterAt(3, 0)
	confirmAt, _ := iterAt(3, 1)
	if e.Lab != "L01" || e.Machine != "" {
		t.Errorf("attribution machine=%q lab=%q, want lab-scoped L01", e.Machine, e.Lab)
	}
	if e.FirstIter != firstLow || e.LastIter != confirmAt {
		t.Errorf("evidence window [%d,%d], want [%d,%d]", e.FirstIter, e.LastIter, firstLow, confirmAt)
	}
	if e.Severity != SeverityCritical {
		t.Errorf("severity %q, want critical for a blackout", e.Severity)
	}

	// All three surfaces agree: ring total, per-kind counter, aggregate.
	if got := reg.Counter(MetricEventsFor(KindAvailabilityCollapse)).Value(); got != 1 {
		t.Errorf("per-kind counter = %d, want 1", got)
	}
	if got, want := reg.Counter(MetricEvents).Value(), int64(d.Ring().Total()); got != want {
		t.Errorf("%s = %d, ring total %d", MetricEvents, got, want)
	}
	if got := reg.Gauge(MetricActive).Value(); got != 1 {
		t.Errorf("active gauge = %d, want 1 while the collapse is ongoing", got)
	}
	// Friday: everything returns; the condition clears.
	feed(4, 0, 8)
	if got := reg.Gauge(MetricActive).Value(); got != 0 {
		t.Errorf("active gauge = %d after recovery, want 0", got)
	}
	if got := eventsOf(d, KindAvailabilityCollapse); len(got) != 1 {
		t.Errorf("recovery emitted extra events: %+v", got)
	}
}

// TestDetectCollapseGateSuppressesScheduledDrop: a drop at a slot whose
// seasonal norm is itself low (the nightly closing sweep) must not
// alert, no matter how sharp the fall from the recent level is.
func TestDetectCollapseGateSuppressesScheduledDrop(t *testing.T) {
	d := New(DefaultConfig(), nil)
	d.SetMachines(fleet8())

	feed := func(day, slot, responding int) {
		at := testStart.AddDate(0, 0, day).Add(4*time.Hour + time.Duration(slot)*testPeriod)
		iter := int(at.Sub(testStart) / testPeriod)
		for i := 0; i < responding; i++ {
			s := healthySample(machID(i), iter)
			d.Sample(&s)
		}
		d.Iteration(trace.Iteration{Iter: iter, Start: at, Attempted: 8, Responded: responding})
	}
	// Every weekday: 4:00 high (pre-sweep), 4:15 onwards near-empty —
	// the schedule, learned as such.
	for day := 0; day < 5; day++ {
		feed(day, 0, 8)
		feed(day, 1, 1)
		feed(day, 2, 1)
	}
	if got := eventsOf(d, KindAvailabilityCollapse); len(got) != 0 {
		t.Fatalf("scheduled nightly drop alerted: %+v", got)
	}
}

// TestDetectCollapseFreezeBounded: a lab that steps down to a sustained
// lower regime pages once, but the baselines must not stay frozen at the
// pre-drop level forever — past CollapseMaxFreezeIters they re-adapt, the
// new level becomes the norm, and the condition clears. Unbounded freeze
// (the pre-fix behaviour, kept under a negative setting) leaves the
// collapse latched for the rest of the trace.
func TestDetectCollapseFreezeBounded(t *testing.T) {
	run := func(maxFreeze int) *Detectors {
		cfg := DefaultConfig()
		cfg.CollapseMaxFreezeIters = maxFreeze
		d := New(cfg, nil)
		d.SetMachines(fleet8())
		feed := func(day, slot, responding int) {
			at := testStart.AddDate(0, 0, day).Add(12*time.Hour + time.Duration(slot)*testPeriod)
			iter := int(at.Sub(testStart) / testPeriod)
			for i := 0; i < responding; i++ {
				s := healthySample(machID(i), iter)
				d.Sample(&s)
			}
			d.Iteration(trace.Iteration{Iter: iter, Start: at, Attempted: 8, Responded: responding})
		}
		// Monday–Wednesday noon: full house (warms every noon bin).
		for day := 0; day < 3; day++ {
			for slot := 0; slot < 4; slot++ {
				feed(day, slot, 8)
			}
		}
		// Thursday onwards (weekdays only): the lab settles at 2/8 — a
		// regime shift, not an outage. It never recovers.
		for _, day := range []int{3, 4, 7, 8, 9} {
			for slot := 0; slot < 4; slot++ {
				feed(day, slot, 2)
			}
		}
		return d
	}

	d := run(4) // freeze bound of 4 iterations keeps the test feed short
	if got := eventsOf(d, KindAvailabilityCollapse); len(got) != 1 {
		t.Fatalf("bounded freeze: collapse events = %d, want exactly 1 (page on the step, then adapt): %+v", len(got), got)
	}
	if lab := d.labs["L01"]; lab.collapseActive {
		t.Error("bounded freeze: collapse still latched after the baseline re-adapted to the new regime")
	}

	// The legacy unbounded behaviour stays reachable for comparison runs:
	// the same feed leaves the condition latched forever.
	d = run(-1)
	if lab := d.labs["L01"]; !lab.collapseActive {
		t.Error("unbounded freeze: expected the collapse to stay latched (pre-fix behaviour)")
	}
}

// TestNilDetectors: every entry point must be a no-op on nil, so a
// disabled detector wires through untouched.
func TestNilDetectors(t *testing.T) {
	var d *Detectors
	s := healthySample("L01-M01", 0)
	d.Sample(&s)
	d.Iteration(trace.Iteration{})
	d.SetMachines(fleet8())
	if d.Ring() != nil {
		t.Error("nil detectors should have a nil ring")
	}
	var r *Ring
	r.Add(Event{})
	r.SetWriter(nil)
	if r.Total() != 0 || r.Buffered() != 0 || r.Snapshot() != nil || r.WriteErr() != nil {
		t.Error("nil ring accessors must return zero values")
	}
}
