package anomaly

import (
	"math"
	"strconv"
	"time"
	"unicode/utf8"
)

// AppendEventJSON appends one event encoded exactly as encoding/json
// would — the exported face of appendEventJSON, for consumers (the query
// layer's event history) that embed events inside their own hand-rolled
// documents without re-deriving the pinned encoding.
func AppendEventJSON(dst []byte, e Event) []byte { return appendEventJSON(dst, e) }

// appendEventJSON appends one event encoded exactly as encoding/json
// would (field order, omitempty machine/lab/detail, HTML-safe string
// escaping, RFC3339Nano time, shortest-round-trip floats) — the same
// contract as telemetry's appendSpanJSON, pinned byte-identical by
// TestAppendEventJSONMatchesEncodingJSON. Unlike the span encoder it
// does not append a newline: the ring reuses it for both JSONL lines
// and the /events array body.
func appendEventJSON(dst []byte, e Event) []byte {
	dst = append(dst, `{"t":"`...)
	dst = e.Time.AppendFormat(dst, time.RFC3339Nano)
	dst = append(dst, `","kind":`...)
	dst = appendJSONString(dst, string(e.Kind))
	dst = append(dst, `,"severity":`...)
	dst = appendJSONString(dst, string(e.Severity))
	if e.Machine != "" {
		dst = append(dst, `,"machine":`...)
		dst = appendJSONString(dst, e.Machine)
	}
	if e.Lab != "" {
		dst = append(dst, `,"lab":`...)
		dst = appendJSONString(dst, e.Lab)
	}
	dst = append(dst, `,"first_iter":`...)
	dst = strconv.AppendInt(dst, int64(e.FirstIter), 10)
	dst = append(dst, `,"last_iter":`...)
	dst = strconv.AppendInt(dst, int64(e.LastIter), 10)
	dst = append(dst, `,"score":`...)
	dst = appendJSONFloat(dst, e.Score)
	if e.Detail != "" {
		dst = append(dst, `,"detail":`...)
		dst = appendJSONString(dst, e.Detail)
	}
	return append(dst, '}')
}

// appendJSONFloat appends f the way encoding/json's floatEncoder does:
// strconv shortest form, but with %e forced for very small/large
// magnitudes and the exponent then compacted (e-05 → e-5) to match
// ES6 number formatting. NaN/±Inf (which encoding/json rejects) encode
// as 0 — detectors clamp scores finite, so this is a belt-and-braces
// guard for the streaming surfaces, not a supported value.
func appendJSONFloat(dst []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return append(dst, '0')
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// strconv writes "2.5e-05"; json wants "2.5e-5".
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string, mirroring encoding/json's
// default escaping: quotes, backslashes, control characters, the
// HTML-sensitive <, >, &, the line separators U+2028/U+2029, and �
// for invalid UTF-8 bytes. (Duplicated from internal/telemetry, which
// keeps it unexported; both copies are pinned against encoding/json by
// golden tests.)
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); {
		r, size := utf8.DecodeRuneInString(s[i:])
		i += size
		switch {
		case r == utf8.RuneError && size == 1:
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
		case r == '"':
			dst = append(dst, '\\', '"')
		case r == '\\':
			dst = append(dst, '\\', '\\')
		case r == '\n':
			dst = append(dst, '\\', 'n')
		case r == '\r':
			dst = append(dst, '\\', 'r')
		case r == '\t':
			dst = append(dst, '\\', 't')
		case r < 0x20 || r == '<' || r == '>' || r == '&':
			dst = append(dst, '\\', 'u', '0', '0', hexDigits[byte(r)>>4], hexDigits[byte(r)&0xf])
		case r == '\u2028' || r == '\u2029':
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[r&0xf])
		default:
			dst = utf8.AppendRune(dst, r)
		}
	}
	return append(dst, '"')
}
