package anomaly

import "testing"

// TestScoreMatching pins the label-matching semantics: kind must agree,
// iteration windows overlap within slack, and entity attribution follows
// the machine/lab scoping rules (a machine-scoped event matches a
// lab-wide label; a lab-scoped event matches machine-scoped labels of
// the same lab — detectors may legitimately escalate).
func TestScoreMatching(t *testing.T) {
	labels := []Label{
		{Kind: KindRebootStorm, Lab: "L01", FirstIter: 100, LastIter: 110},
		{Kind: KindRebootStorm, Lab: "L02", Machines: []string{"L02-M01"}, FirstIter: 200, LastIter: 210},
		{Kind: KindUsageDrift, Lab: "L03", Machines: []string{"L03-M05"}, FirstIter: 300, LastIter: 340},
	}
	events := []Event{
		// Hits.
		{Kind: KindRebootStorm, Lab: "L01", FirstIter: 104, LastIter: 108},                     // lab-scoped on lab-wide label
		{Kind: KindRebootStorm, Machine: "L01-M03", Lab: "L01", FirstIter: 112, LastIter: 113}, // within slack past the window
		{Kind: KindRebootStorm, Lab: "L02", FirstIter: 201, LastIter: 205},                     // lab-scoped on machine-scoped label
		{Kind: KindUsageDrift, Machine: "L03-M05", Lab: "L03", FirstIter: 310, LastIter: 314},  // exact machine
		// Misses.
		{Kind: KindUsageDrift, Machine: "L03-M09", Lab: "L03", FirstIter: 310, LastIter: 314}, // wrong machine
		{Kind: KindRebootStorm, Lab: "L01", FirstIter: 130, LastIter: 131},                    // outside window+slack
		{Kind: KindSensorStaleness, Lab: "L01", FirstIter: 104, LastIter: 108},                // wrong kind (and no label for it)
	}
	scores := Score(events, labels, 8)
	byKind := map[Kind]KindScore{}
	for _, s := range scores {
		byKind[s.Kind] = s
	}

	storm := byKind[KindRebootStorm]
	if storm.Events != 4 || storm.MatchedEvents != 3 {
		t.Errorf("storm events %d matched %d, want 4/3", storm.Events, storm.MatchedEvents)
	}
	if storm.Labels != 2 || storm.HitLabels != 2 {
		t.Errorf("storm labels %d hit %d, want 2/2", storm.Labels, storm.HitLabels)
	}
	drift := byKind[KindUsageDrift]
	if drift.Precision() != 0.5 || drift.Recall() != 1 {
		t.Errorf("drift P/R = %v/%v, want 0.5/1", drift.Precision(), drift.Recall())
	}
	stale := byKind[KindSensorStaleness]
	if stale.Precision() != 0 || stale.Recall() != 1 {
		t.Errorf("unlabeled-kind P/R = %v/%v, want 0 precision (pure FP), vacuous recall 1",
			stale.Precision(), stale.Recall())
	}
	// A kind with neither events nor labels is vacuously perfect.
	collapse := byKind[KindAvailabilityCollapse]
	if collapse.Precision() != 1 || collapse.Recall() != 1 {
		t.Errorf("idle-kind P/R = %v/%v, want 1/1", collapse.Precision(), collapse.Recall())
	}

	merged := MergeScores(scores, scores)
	for _, m := range merged {
		single := byKind[m.Kind]
		if m.Events != 2*single.Events || m.Labels != 2*single.Labels {
			t.Errorf("%s merge doubled nothing: %+v vs %+v", m.Kind, m, single)
		}
		if m.Precision() != single.Precision() || m.Recall() != single.Recall() {
			t.Errorf("%s merge changed rates: %v/%v vs %v/%v",
				m.Kind, m.Precision(), m.Recall(), single.Precision(), single.Recall())
		}
	}
}
