package anomaly

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"
)

// goldenEvents exercises every encoder branch: omitempty fields present
// and absent, HTML-sensitive and control characters, invalid UTF-8, the
// U+2028/U+2029 line separators, sub-second timestamps, and float shapes
// across the decimal/exponent boundary.
var goldenEvents = []Event{
	{},
	{
		Time:      time.Date(2003, 10, 6, 8, 0, 0, 0, time.UTC),
		Kind:      KindAvailabilityCollapse,
		Severity:  SeverityCritical,
		Lab:       "L01",
		FirstIter: 12,
		LastIter:  14,
		Score:     0.8333333333333334,
		Detail:    "reachable 0.12 vs recent 0.72",
	},
	{
		Time:     time.Date(2003, 10, 6, 8, 0, 0, 123456789, time.UTC),
		Kind:     KindRebootStorm,
		Severity: SeverityWarning,
		Machine:  "L01-M07",
		Lab:      "L01",
		Score:    3,
	},
	{
		Kind:   KindSMARTAnomaly,
		Detail: "a<b>&\"c\"\\d\ne\tf\rg\x01h",
	},
	{
		Kind:   KindUsageDrift,
		Detail: "bad utf8 \xff\xfe and separators \u2028\u2029 and 日本語",
	},
	{Score: -0.000001},
	{Score: 0.0000001}, // < 1e-6: exponent form
	{Score: -2.5e-7},   // exponent with two-digit compaction
	{Score: 1e21},      // ≥ 1e21: exponent form
	{Score: -3.25e+22},
	{Score: 999999999999999999999}, // just under 1e21
	{Score: math.MaxFloat64},
	{Score: 5e-324}, // smallest denormal
	{Score: -1e12},
}

// TestAppendEventJSONMatchesEncodingJSON pins the hand-rolled event
// encoder byte-identical to encoding/json — same contract as the
// telemetry span encoder. If this fails after a Go release, the stdlib
// changed its JSON formatting and the encoder must follow.
func TestAppendEventJSONMatchesEncodingJSON(t *testing.T) {
	for i, e := range goldenEvents {
		want, err := json.Marshal(e)
		if err != nil {
			t.Fatalf("event %d: json.Marshal: %v", i, err)
		}
		got := appendEventJSON(nil, e)
		if !bytes.Equal(got, want) {
			t.Errorf("event %d encoding mismatch:\n got %s\nwant %s", i, got, want)
		}
	}
}

// TestAppendEventJSONNonFinite: encoding/json rejects NaN/Inf outright;
// the streaming encoder cannot error mid-line, so it degrades them to 0.
// Detectors clamp scores finite (clampScore), so this is a guard, not a
// supported value.
func TestAppendEventJSONNonFinite(t *testing.T) {
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		got := appendEventJSON(nil, Event{Score: f})
		want := appendEventJSON(nil, Event{Score: 0})
		if !bytes.Equal(got, want) {
			t.Errorf("score %v encoded as %s, want the zero encoding %s", f, got, want)
		}
	}
}

// TestRingAppendJSONMatchesEncodingJSON checks the /events array path
// against encoding/json across fill levels, wraparound, and the ?n=
// limit.
func TestRingAppendJSONMatchesEncodingJSON(t *testing.T) {
	r := NewRing(4)
	check := func(n int) {
		t.Helper()
		events := r.Snapshot()
		if n > 0 && n < len(events) {
			events = events[len(events)-n:]
		}
		want, err := json.Marshal(events)
		if err != nil {
			t.Fatal(err)
		}
		if len(events) == 0 {
			want = []byte("[]") // json.Marshal renders a nil slice as null
		}
		got := r.AppendJSON(nil, n)
		if !bytes.Equal(got, want) {
			t.Errorf("AppendJSON(n=%d) = %s, want %s", n, got, want)
		}
	}
	check(0)
	for i, e := range goldenEvents {
		r.Add(e)
		check(0)
		check(1)
		check(2)
		check(i + 40) // larger than buffered: full output
	}
	if r.Buffered() != 4 || r.Total() != uint64(len(goldenEvents)) {
		t.Errorf("ring buffered %d total %d, want 4 and %d", r.Buffered(), r.Total(), len(goldenEvents))
	}

	var nilRing *Ring
	if got := nilRing.AppendJSON(nil, 0); string(got) != "[]" {
		t.Errorf("nil ring AppendJSON = %s, want []", got)
	}
}

// TestRingJSONLStream checks the writer surface: every added event
// becomes exactly one JSONL line, byte-identical to encoding/json, and
// the line count matches Total even after ring eviction.
func TestRingJSONLStream(t *testing.T) {
	var buf bytes.Buffer
	r := NewRing(2) // smaller than the event count: eviction must not drop lines
	r.SetWriter(&buf)
	for _, e := range goldenEvents {
		r.Add(e)
	}
	lines := bytes.Split(bytes.TrimSuffix(buf.Bytes(), []byte("\n")), []byte("\n"))
	if len(lines) != len(goldenEvents) {
		t.Fatalf("stream has %d lines, want %d", len(lines), len(goldenEvents))
	}
	for i, e := range goldenEvents {
		want, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(lines[i], want) {
			t.Errorf("line %d = %s, want %s", i, lines[i], want)
		}
	}
	if err := r.WriteErr(); err != nil {
		t.Errorf("WriteErr = %v", err)
	}
}
