package anomaly

import (
	"fmt"
	"math"
	"strings"
	"time"

	"winlab/internal/stats"
	"winlab/internal/telemetry"
	"winlab/internal/trace"
)

// Telemetry metric names published by the detectors. Per-kind event
// counters are derived from the Kind string (MetricEventsFor): the
// registry has no labels, so each detector gets its own counter.
const (
	// MetricSamples counts samples fed through the detector tap.
	MetricSamples = "anomaly_samples_total"
	// MetricIterations counts iteration boundaries fed through the tap.
	MetricIterations = "anomaly_iterations_total"
	// MetricEvents counts all emitted events, every kind.
	MetricEvents = "anomaly_events_total"
	// MetricActive gauges currently-open anomaly conditions (entered on
	// event emission, left when the detector sees the condition clear).
	MetricActive = "anomaly_active_conditions"
)

// MetricEventsFor returns the per-kind event counter name, e.g.
// "anomaly_events_reboot_storm_total" for KindRebootStorm.
func MetricEventsFor(k Kind) string {
	return "anomaly_events_" + strings.ReplaceAll(string(k), "-", "_") + "_total"
}

// Config tunes the detectors. The zero value is unusable; start from
// DefaultConfig. Thresholds are calibrated against the behavior model's
// natural variation (classroom reboots, nightly shutdowns, session
// churn) so the labeled-scenario harness meets its precision floor
// without suppressing injected anomalies.
type Config struct {
	// RingCapacity bounds the in-memory event ring (DefaultRingCapacity
	// when 0).
	RingCapacity int

	// Availability collapse (per-lab). The detector watches for a *fast
	// drop* of the reachable fraction against the lab's own recent level
	// (a short-horizon EWMA): day-to-day occupancy varies far too much
	// for an absolute availability floor, but a lab that was 90% up an
	// hour ago and is near-zero now has collapsed. A seasonal baseline —
	// an EWMA per (day-class, quarter-hour) bin, weekday/Saturday/Sunday
	// × 96 — gates the alert: slots where the lab is routinely down (the
	// 4 am closing sweep, Sundays) never alert no matter how sharp the
	// drop, because the drop is the schedule, not an anomaly. With one
	// observation per bin per matching day, CollapseWarmupObs counts
	// days of that day-class.
	CollapseRecentAlpha float64 // EWMA weight of the newest iteration in the recent level
	CollapseRecentMin   float64 // recent level must be ≥ this for a drop to count
	CollapseAlpha       float64 // seasonal-bin EWMA weight
	CollapseWarmupObs   int     // min observations in a bin before alerting
	CollapseMinBaseline float64 // bins with seasonal value below this never alert (scheduled-off hours)
	CollapseFrac        float64 // alert when frac < CollapseFrac × recent and < CollapseFrac × seasonal norm…
	CollapseMinDeficit  float64 // …and recent − frac ≥ this (guards small-lab noise)
	CollapseConfirm     int     // consecutive low iterations before emitting
	CollapseRecoverFrac float64 // condition clears when frac ≥ this × recent
	// CollapseMaxFreezeIters bounds how long the recent level and the
	// seasonal baseline stay frozen while a drop is low/active. A fast
	// outage recovers well within the bound, so the pre-drop reference
	// is preserved exactly as before; a shift that *stays* low past the
	// bound is a regime change (a lockdown semester, a policy change),
	// and the baselines resume adapting so the condition clears through
	// the recovery check instead of paging forever against a stale
	// reference. Zero selects the default; negative means unbounded
	// (the pre-fix freeze-forever behaviour).
	CollapseMaxFreezeIters int
	// Blackout escape hatch: a quiet lab (recent below CollapseRecentMin)
	// going to *zero* reachable machines is still a collapse, provided the
	// recent level implies at least this many machines were just up. The
	// seasonal gate applies to this path too, so the closing sweep cannot
	// trigger it.
	CollapseBlackoutMachines float64

	// Reboot storm (per-machine window rate + per-lab storming count).
	StormWindowIters     int     // sliding window length, in iterations
	StormMaxGapIters     int     // a boot change counts as a reboot only if the sample gap is ≤ this (a morning power-on after a long off-gap is not a reboot)
	StormMachineReboots  int     // machine event at ≥ this many window reboots
	StormLabMinMachines  int     // lab event at ≥ max(this, StormLabFrac×size) machines…
	StormLabFrac         float64 // …each with ≥ StormMachineReboots−1 window reboots
	StormMachineRecovery int     // window reboots must fall to ≤ this to clear

	// SMART counter anomalies (attributes 12 power cycles / 9 power-on
	// hours — the two the probe carries).
	SMARTCycleJump    int64 // cycles delta > this + 2×gap ⇒ jump
	SMARTHoursSlack   int64 // hours delta > elapsed hours + this ⇒ excursion
	SMARTCooldownIter int   // iterations to mute a machine after an event

	// Usage drift (per-machine Welford baseline on memory load and used
	// disk). CPU is deliberately excluded: the behavior model's course
	// schedule makes multi-hour CPU regimes (lab-wide batch sessions) a
	// natural pattern, not an anomaly.
	DriftWarmupSamples int     // baseline observations before alerting
	DriftZ             float64 // z-score threshold
	DriftConfirm       int     // consecutive out-of-regime samples before emitting
	DriftMemFloorPct   float64 // memory sd floor, percent points
	DriftDiskFloorGB   float64 // used-disk sd floor, GB
	DriftRecoverZ      float64 // condition clears when z < this

	// Sensor staleness: machine answers probes but Uptime and CPUIdle
	// are bit-frozen across samples of the same boot.
	StaleConfirm int // consecutive frozen samples before emitting
	StaleMaxGap  int // only consecutive-ish samples count (iteration gap ≤ this)
}

// DefaultConfig returns thresholds tuned for the paper-scale fleet and
// its behavior model (15-minute iterations, classroom power habits).
func DefaultConfig() Config {
	return Config{
		CollapseRecentAlpha:      0.5,
		CollapseRecentMin:        0.35,
		CollapseAlpha:            0.3,
		CollapseWarmupObs:        3,
		CollapseMinBaseline:      0.3,
		CollapseFrac:             0.35,
		CollapseMinDeficit:       0.3,
		CollapseConfirm:          2,
		CollapseRecoverFrac:      0.7,
		CollapseBlackoutMachines: 3,
		CollapseMaxFreezeIters:   192, // two days of 15-minute iterations

		StormWindowIters:     8, // two hours
		StormMaxGapIters:     2,
		StormMachineReboots:  3,
		StormLabMinMachines:  3,
		StormLabFrac:         0.3,
		StormMachineRecovery: 0,

		SMARTCycleJump:    10,
		SMARTHoursSlack:   6, // must exceed the longest plausible counter catch-up (a stuck agent recovering)
		SMARTCooldownIter: 16,

		DriftWarmupSamples: 128, // ≈ 3 open-hours days at 15-minute sampling
		DriftZ:             10,  // natural heavy memory users reach z ≈ 9; injected regime shifts score ≥ 19
		DriftConfirm:       4,
		DriftMemFloorPct:   4,
		DriftDiskFloorGB:   0.25,
		DriftRecoverZ:      3,

		StaleConfirm: 3,
		StaleMaxGap:  2,
	}
}

// stormRingSize bounds the per-machine reboot-iteration memory; it only
// needs to cover StormWindowIters (8 by default) worth of reboots, one
// per iteration at most.
const stormRingSize = 16

// machState is the constant-size per-machine detector state.
type machState struct {
	lab *labState
	id  string

	// last committed sample, destructured (keeping a *trace.Sample would
	// pin the sink's slice backing array across regrowth).
	hasLast     bool
	lastIter    int
	lastTime    time.Time
	lastBoot    time.Time
	lastUptime  time.Duration
	lastCPUIdle time.Duration
	lastCycles  int64
	lastHours   int64

	// reboot-storm window: iteration numbers of recent reboots.
	rebootIters [stormRingSize]int32
	rebootNext  int
	rebootN     int // total recorded (≤ stormRingSize live)
	stormActive bool
	stormFirst  int

	smartQuietUntil int // iteration before which SMART checks are muted

	// usage drift baselines and confirmation run.
	memBase     stats.Running
	diskBase    stats.Running
	driftRun    int
	driftFirst  int
	driftActive bool

	// staleness confirmation run.
	frozenRun   int
	staleFirst  int
	staleActive bool
}

// labState is the constant-size per-lab detector state.
type labState struct {
	name    string
	members []*machState

	responded int // samples seen since the last Iteration call

	// recent availability level: short-horizon EWMA of the reachable
	// fraction, frozen while a drop is in progress.
	recent     float64
	recentInit bool

	// seasonal availability baseline: EWMA of reachable fraction per
	// (day-class, quarter-hour) bin. 3 classes × 96 quarter-hours. Used
	// only as a gate — scheduled-off slots (closing sweep, Sundays) have
	// low bin values and never alert. Quarter-hour granularity matters:
	// an hour-wide bin straddling the nightly closing sweep averages the
	// pre-sweep (high) and post-sweep (low) fractions into a value that
	// passes the gate, and the sweep then alerts every night.
	baseline [288]struct {
		value float64
		obs   int
	}
	lowRun         int
	freezeRun      int // iterations the baselines have been frozen for
	collapseFirst  int
	collapseActive bool

	labStormActive bool
	labStormFirst  int
}

func seasonBin(t time.Time) int {
	class := 0
	switch t.Weekday() {
	case time.Saturday:
		class = 1
	case time.Sunday:
		class = 2
	}
	return class*96 + t.Hour()*4 + t.Minute()/15
}

// Detectors runs every streaming detector over the live sample stream.
// Sample and Iteration are designed to be called from a DatasetSink tap,
// i.e. under the sink's lock in commit order, so they take no internal
// lock of their own (the Ring has one for its readers). All methods are
// nil-safe so a disabled detector wires through untouched.
type Detectors struct {
	cfg  Config
	ring *Ring

	machines map[string]*machState
	labs     map[string]*labState

	// resolved telemetry handles (nil-safe no-ops without a registry).
	samples    *telemetry.Counter
	iterations *telemetry.Counter
	events     *telemetry.Counter
	active     *telemetry.Gauge
	perKind    map[Kind]*telemetry.Counter
}

// New builds detectors with cfg (zero-value fields fall back to
// DefaultConfig) publishing counters into reg (nil for none). Call
// SetMachines before feeding samples so lab sizes are known.
func New(cfg Config, reg *telemetry.Registry) *Detectors {
	def := DefaultConfig()
	if cfg.CollapseAlpha == 0 {
		cfg = def
	}
	if cfg.CollapseMaxFreezeIters == 0 {
		cfg.CollapseMaxFreezeIters = def.CollapseMaxFreezeIters
	}
	d := &Detectors{
		cfg:      cfg,
		ring:     NewRing(cfg.RingCapacity),
		machines: make(map[string]*machState),
		labs:     make(map[string]*labState),
		perKind:  make(map[Kind]*telemetry.Counter, 5),
	}
	d.samples = reg.Counter(MetricSamples)
	d.iterations = reg.Counter(MetricIterations)
	d.events = reg.Counter(MetricEvents)
	d.active = reg.Gauge(MetricActive)
	for _, k := range Kinds() {
		d.perKind[k] = reg.Counter(MetricEventsFor(k))
	}
	return d
}

// SetMachines registers the fleet: per-machine state and per-lab
// membership (lab sizes are the denominator of the reachable fraction).
// Samples from machines never registered are tracked but excluded from
// lab availability (their lab size is unknown).
func (d *Detectors) SetMachines(infos []trace.MachineInfo) {
	if d == nil {
		return
	}
	for _, info := range infos {
		if _, ok := d.machines[info.ID]; ok {
			continue
		}
		lab := d.labs[info.Lab]
		if lab == nil {
			lab = &labState{name: info.Lab}
			d.labs[info.Lab] = lab
		}
		m := &machState{lab: lab, id: info.ID}
		lab.members = append(lab.members, m)
		d.machines[info.ID] = m
	}
}

// Ring returns the event ring (for /events, JSONL wiring and tests).
func (d *Detectors) Ring() *Ring {
	if d == nil {
		return nil
	}
	return d.ring
}

func (d *Detectors) emit(e Event) {
	d.ring.Add(e)
	d.events.Inc()
	d.perKind[e.Kind].Inc()
	d.active.Add(1)
}

func (d *Detectors) clearActive() {
	d.active.Add(-1)
}

// Sample feeds one committed sample. Pointer contents are read during
// the call only — nothing retains s.
func (d *Detectors) Sample(s *trace.Sample) {
	if d == nil || s == nil {
		return
	}
	d.samples.Inc()
	m := d.machines[s.Machine]
	if m == nil {
		// Unregistered machine: create standalone state with no lab.
		m = &machState{id: s.Machine}
		d.machines[s.Machine] = m
	}
	if m.lab != nil {
		m.lab.responded++
	}
	if m.hasLast {
		gap := s.Iter - m.lastIter
		sameBoot := absDuration(s.BootTime.Sub(m.lastBoot)) <= time.Second
		if !sameBoot && gap <= d.cfg.StormMaxGapIters {
			d.recordReboot(m, s)
		}
		d.checkStorm(m, s)
		d.checkSMART(m, s, gap)
		d.checkStale(m, s, gap, sameBoot)
	}
	d.checkDrift(m, s)
	m.hasLast = true
	m.lastIter = s.Iter
	m.lastTime = s.Time
	m.lastBoot = s.BootTime
	m.lastUptime = s.Uptime
	m.lastCPUIdle = s.CPUIdle
	m.lastCycles = s.PowerCycles
	m.lastHours = s.PowerOnHours
}

// Iteration feeds one iteration boundary: lab-level detectors (collapse,
// lab storm) evaluate against the responses counted since the previous
// boundary. The sink calls taps after booking the iteration's samples,
// so the counts line up.
func (d *Detectors) Iteration(it trace.Iteration) {
	if d == nil {
		return
	}
	d.iterations.Inc()
	bin := seasonBin(it.Start)
	for _, lab := range d.labs {
		if len(lab.members) == 0 {
			continue
		}
		frac := float64(lab.responded) / float64(len(lab.members))
		lab.responded = 0
		d.checkCollapse(lab, it, bin, frac)
		d.checkLabStorm(lab, it)
	}
}

func absDuration(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}

// --- availability collapse ---

func (d *Detectors) checkCollapse(lab *labState, it trace.Iteration, bin int, frac float64) {
	b := &lab.baseline[bin]
	// The seasonal gate: this hour of this day-class is normally up.
	gate := b.obs >= d.cfg.CollapseWarmupObs && b.value >= d.cfg.CollapseMinBaseline
	ref := lab.recent
	// A drop must land far below the recent level AND the seasonal norm
	// for this slot. The second clause is what keeps the nightly closing
	// sweep quiet on high-occupancy evenings: the 4:15 am bin's norm is
	// itself the post-sweep level, so the scheduled drop never undercuts
	// it, while a genuine collapse toward zero undercuts both.
	drop := ref >= d.cfg.CollapseRecentMin &&
		frac < d.cfg.CollapseFrac*ref &&
		frac < d.cfg.CollapseFrac*b.value &&
		ref-frac >= d.cfg.CollapseMinDeficit
	blackout := frac == 0 && ref*float64(len(lab.members)) >= d.cfg.CollapseBlackoutMachines
	low := lab.recentInit && gate && (drop || blackout)
	if low {
		if lab.lowRun == 0 {
			lab.collapseFirst = it.Iter
		}
		lab.lowRun++
		if lab.lowRun >= d.cfg.CollapseConfirm && !lab.collapseActive {
			lab.collapseActive = true
			sev := SeverityWarning
			if frac < d.cfg.CollapseFrac*ref/2 {
				sev = SeverityCritical
			}
			d.emit(Event{
				Time:      it.Start,
				Kind:      KindAvailabilityCollapse,
				Severity:  sev,
				Lab:       lab.name,
				FirstIter: lab.collapseFirst,
				LastIter:  it.Iter,
				Score:     clampScore(1 - frac/ref),
				Detail:    fmt.Sprintf("reachable %.2f vs recent %.2f", frac, ref),
			})
		}
	} else {
		lab.lowRun = 0
		if lab.collapseActive && frac >= d.cfg.CollapseRecoverFrac*ref {
			lab.collapseActive = false
			d.clearActive()
		}
	}
	// Feed the recent level and the seasonal baseline, but not with
	// collapse-depressed fractions: an unhandled outage must not become
	// the new normal (the recent level stays frozen at its pre-drop
	// value, which is also what recovery is measured against). The
	// freeze is bounded: a condition still low after
	// CollapseMaxFreezeIters is a regime shift, not an outage, so the
	// baselines resume adapting and the condition clears through the
	// recovery check once the recent level has caught up. Fast drops
	// recover far inside the bound and keep the exact frozen-reference
	// behaviour.
	if low || lab.collapseActive {
		lab.freezeRun++
		if d.cfg.CollapseMaxFreezeIters < 0 || lab.freezeRun <= d.cfg.CollapseMaxFreezeIters {
			return
		}
	} else {
		lab.freezeRun = 0
	}
	if !lab.recentInit {
		lab.recent = frac
		lab.recentInit = true
	} else {
		lab.recent = d.cfg.CollapseRecentAlpha*frac + (1-d.cfg.CollapseRecentAlpha)*lab.recent
	}
	if b.obs == 0 {
		b.value = frac
	} else {
		b.value = d.cfg.CollapseAlpha*frac + (1-d.cfg.CollapseAlpha)*b.value
	}
	b.obs++
}

// --- reboot storm ---

func (d *Detectors) recordReboot(m *machState, s *trace.Sample) {
	m.rebootIters[m.rebootNext] = int32(s.Iter)
	m.rebootNext = (m.rebootNext + 1) % stormRingSize
	m.rebootN++
}

// windowReboots counts recorded reboots newer than iter−window.
func (m *machState) windowReboots(iter, window int) int {
	n := m.rebootN
	if n > stormRingSize {
		n = stormRingSize
	}
	count := 0
	for i := 0; i < n; i++ {
		if int(m.rebootIters[i]) > iter-window {
			count++
		}
	}
	return count
}

func (d *Detectors) checkStorm(m *machState, s *trace.Sample) {
	w := m.windowReboots(s.Iter, d.cfg.StormWindowIters)
	if w >= d.cfg.StormMachineReboots {
		if !m.stormActive {
			m.stormActive = true
			m.stormFirst = s.Iter - d.cfg.StormWindowIters + 1
			if m.stormFirst < 0 {
				m.stormFirst = 0
			}
			sev := SeverityWarning
			if w >= 2*d.cfg.StormMachineReboots {
				sev = SeverityCritical
			}
			lab := ""
			if m.lab != nil {
				lab = m.lab.name
			}
			d.emit(Event{
				Time:      s.Time,
				Kind:      KindRebootStorm,
				Severity:  sev,
				Machine:   m.id,
				Lab:       lab,
				FirstIter: m.stormFirst,
				LastIter:  s.Iter,
				Score:     float64(w),
				Detail:    fmt.Sprintf("%d reboots in %d iterations", w, d.cfg.StormWindowIters),
			})
		}
	} else if m.stormActive && w <= d.cfg.StormMachineRecovery {
		m.stormActive = false
		d.clearActive()
	}
}

func (d *Detectors) checkLabStorm(lab *labState, it trace.Iteration) {
	threshold := d.cfg.StormLabMinMachines
	if f := int(math.Ceil(d.cfg.StormLabFrac * float64(len(lab.members)))); f > threshold {
		threshold = f
	}
	// A lab storms when several member machines are rebooting at nearly
	// machine-storm rates at once — counting storming machines rather
	// than raw lab-wide reboots keeps scattered classroom restarts
	// (which are many machines × one reboot) below the bar.
	need := d.cfg.StormMachineReboots - 1
	if need < 1 {
		need = 1
	}
	storming := 0
	for _, m := range lab.members {
		if m.windowReboots(it.Iter, d.cfg.StormWindowIters) >= need {
			storming++
		}
	}
	if storming >= threshold {
		if !lab.labStormActive {
			lab.labStormActive = true
			lab.labStormFirst = it.Iter - d.cfg.StormWindowIters + 1
			if lab.labStormFirst < 0 {
				lab.labStormFirst = 0
			}
			sev := SeverityWarning
			if storming >= 2*threshold {
				sev = SeverityCritical
			}
			d.emit(Event{
				Time:      it.Start,
				Kind:      KindRebootStorm,
				Severity:  sev,
				Lab:       lab.name,
				FirstIter: lab.labStormFirst,
				LastIter:  it.Iter,
				Score:     float64(storming),
				Detail:    fmt.Sprintf("%d/%d machines rebooting repeatedly", storming, len(lab.members)),
			})
		}
	} else if lab.labStormActive && storming == 0 {
		lab.labStormActive = false
		d.clearActive()
	}
}

// --- SMART counter anomalies ---

func (d *Detectors) checkSMART(m *machState, s *trace.Sample, gap int) {
	if s.Iter < m.smartQuietUntil {
		return
	}
	cycleDelta := s.PowerCycles - m.lastCycles
	hoursDelta := s.PowerOnHours - m.lastHours
	elapsedHours := int64(s.Time.Sub(m.lastTime) / time.Hour)

	var detail string
	var score float64
	switch {
	case cycleDelta < 0:
		detail = fmt.Sprintf("power-cycle count regressed by %d", -cycleDelta)
		score = float64(-cycleDelta)
	case cycleDelta > d.cfg.SMARTCycleJump+2*int64(gap):
		detail = fmt.Sprintf("power-cycle count jumped by %d over %d iterations", cycleDelta, gap)
		score = float64(cycleDelta)
	case hoursDelta < 0:
		detail = fmt.Sprintf("power-on hours regressed by %d", -hoursDelta)
		score = float64(-hoursDelta)
	case hoursDelta > elapsedHours+d.cfg.SMARTHoursSlack:
		detail = fmt.Sprintf("power-on hours advanced %d in %d wall hours", hoursDelta, elapsedHours)
		score = float64(hoursDelta - elapsedHours)
	default:
		return
	}
	m.smartQuietUntil = s.Iter + d.cfg.SMARTCooldownIter
	lab := ""
	if m.lab != nil {
		lab = m.lab.name
	}
	d.emit(Event{
		Time:      s.Time,
		Kind:      KindSMARTAnomaly,
		Severity:  SeverityWarning,
		Machine:   m.id,
		Lab:       lab,
		FirstIter: m.lastIter,
		LastIter:  s.Iter,
		Score:     clampScore(score),
		Detail:    detail,
	})
	// SMART events are point detections with a cooldown, not sustained
	// conditions: balance the active gauge immediately.
	d.clearActive()
}

// --- usage-regime drift ---

func (d *Detectors) checkDrift(m *machState, s *trace.Sample) {
	mem := float64(s.MemLoadPct)
	disk := s.UsedDiskGB()
	warm := m.memBase.N() >= int64(d.cfg.DriftWarmupSamples)
	z := 0.0
	if warm {
		zMem := math.Abs(mem-m.memBase.Mean()) / math.Max(m.memBase.StdDev(), d.cfg.DriftMemFloorPct)
		zDisk := math.Abs(disk-m.diskBase.Mean()) / math.Max(m.diskBase.StdDev(), d.cfg.DriftDiskFloorGB)
		z = math.Max(zMem, zDisk)
	}
	if warm && z >= d.cfg.DriftZ {
		if m.driftRun == 0 {
			m.driftFirst = s.Iter
		}
		m.driftRun++
		if m.driftRun >= d.cfg.DriftConfirm && !m.driftActive {
			m.driftActive = true
			sev := SeverityWarning
			if z >= 2*d.cfg.DriftZ {
				sev = SeverityCritical
			}
			lab := ""
			if m.lab != nil {
				lab = m.lab.name
			}
			d.emit(Event{
				Time:      s.Time,
				Kind:      KindUsageDrift,
				Severity:  sev,
				Machine:   m.id,
				Lab:       lab,
				FirstIter: m.driftFirst,
				LastIter:  s.Iter,
				Score:     clampScore(z),
				Detail: fmt.Sprintf("mem %.0f%% (baseline %.0f%%), used disk %.1fGB (baseline %.1fGB)",
					mem, m.memBase.Mean(), disk, m.diskBase.Mean()),
			})
		}
		// Out-of-regime samples do not feed the baseline: a sustained
		// anomaly must not normalise itself.
		return
	}
	m.driftRun = 0
	if m.driftActive && (!warm || z < d.cfg.DriftRecoverZ) {
		m.driftActive = false
		d.clearActive()
	}
	m.memBase.Add(mem)
	m.diskBase.Add(disk)
}

// --- sensor staleness ---

func (d *Detectors) checkStale(m *machState, s *trace.Sample, gap int, sameBoot bool) {
	// Uptime and cumulative CPU idle both advance on any live machine
	// (idle time can stall only under 100% sustained load; uptime never
	// stalls). Both frozen across a sampling gap means the agent is
	// replaying a stale report.
	frozen := sameBoot && gap <= d.cfg.StaleMaxGap &&
		s.Uptime == m.lastUptime && s.CPUIdle == m.lastCPUIdle
	if frozen {
		if m.frozenRun == 0 {
			m.staleFirst = s.Iter
		}
		m.frozenRun++
		if m.frozenRun >= d.cfg.StaleConfirm && !m.staleActive {
			m.staleActive = true
			lab := ""
			if m.lab != nil {
				lab = m.lab.name
			}
			d.emit(Event{
				Time:      s.Time,
				Kind:      KindSensorStaleness,
				Severity:  SeverityWarning,
				Machine:   m.id,
				Lab:       lab,
				FirstIter: m.staleFirst,
				LastIter:  s.Iter,
				Score:     float64(m.frozenRun),
				Detail:    fmt.Sprintf("uptime and CPU idle frozen for %d consecutive samples", m.frozenRun),
			})
		}
		return
	}
	m.frozenRun = 0
	if m.staleActive {
		m.staleActive = false
		d.clearActive()
	}
}

func clampScore(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	if math.IsInf(v, 1) || v > 1e12 {
		return 1e12
	}
	if math.IsInf(v, -1) || v < -1e12 {
		return -1e12
	}
	return v
}
