// Package anomaly is the online detection layer over the live sample
// stream: a set of constant-memory streaming detectors fed from the
// DatasetSink commit path that turn the paper's post-hoc findings —
// availability collapses, reboot storms, SMART counter corruption, usage
// regime changes, machines that answer probes with frozen counters —
// into typed events the moment the collector books the evidence.
//
// PR 5's invariant checker validates that a trace is *well-formed*; this
// package detects that a well-formed trace describes a fleet that is
// *misbehaving*. The split matters: a lab whose machines all vanish at
// 10 am violates no invariant, but it is exactly the condition §4.1 of
// the paper tabulates after the fact and a live deployment must notice.
//
// Detections surface three ways, all fed from one emit path so their
// counts agree exactly:
//
//   - a bounded in-memory Ring served as JSON on the telemetry server's
//     /events endpoint (telemetry/httpx);
//   - an optional JSONL writer on the Ring (same hand-rolled encoder
//     contract as the telemetry span stream: byte-identical to
//     encoding/json, zero steady-state allocations);
//   - per-kind telemetry counters (anomaly_events_*_total) plus an
//     active-condition gauge, so a /metrics scrape shows detection rates
//     next to the collector health counters.
//
// Ground truth is free: the experiment driver can inject each anomaly
// class on a seeded schedule (experiment.InjectedAnomaly), and Score
// turns the injection windows into per-detector precision/recall — the
// CI gate behind `make anomaly`.
package anomaly

import (
	"io"
	"sync"
	"time"
)

// Kind names one detector / anomaly class. The string values are stable:
// they appear in /events JSON, JSONL streams and telemetry metric names.
type Kind string

const (
	// KindAvailabilityCollapse: a lab's reachable fraction dropped far
	// below its seasonal baseline (the paper's §4.1 availability, watched
	// live).
	KindAvailabilityCollapse Kind = "availability-collapse"
	// KindRebootStorm: a machine or a lab is power-cycling at a rate no
	// classroom produces (§5.2 power-cycle analysis).
	KindRebootStorm Kind = "reboot-storm"
	// KindSMARTAnomaly: SMART attribute 12/9 (power cycles, power-on
	// hours) regressed or jumped implausibly between samples (§5.2.2).
	KindSMARTAnomaly Kind = "smart-anomaly"
	// KindUsageDrift: a machine's memory or disk usage left its own
	// Welford baseline (§4.2 resource-usage regimes).
	KindUsageDrift Kind = "usage-drift"
	// KindSensorStaleness: a machine keeps answering probes but its
	// monotone counters stopped moving — the report is stale even though
	// the transport is healthy.
	KindSensorStaleness Kind = "sensor-staleness"
)

// Kinds lists every detector kind in stable order (metric registration,
// report rendering).
func Kinds() []Kind {
	return []Kind{
		KindAvailabilityCollapse,
		KindRebootStorm,
		KindSMARTAnomaly,
		KindUsageDrift,
		KindSensorStaleness,
	}
}

// Severity grades an event.
type Severity string

const (
	SeverityWarning  Severity = "warning"
	SeverityCritical Severity = "critical"
)

// Event is one detection: which anomaly class, where (machine and/or
// lab), over which iteration span the evidence accumulated, and how far
// past the detector's threshold the signal was. Events are emitted once,
// when the detector's condition is confirmed; sustained conditions do
// not re-emit (the per-kind active gauge tracks ongoing ones).
type Event struct {
	Time      time.Time `json:"t"` // sample/iteration time of confirmation
	Kind      Kind      `json:"kind"`
	Severity  Severity  `json:"severity"`
	Machine   string    `json:"machine,omitempty"` // "" for lab-scoped events
	Lab       string    `json:"lab,omitempty"`
	FirstIter int       `json:"first_iter"` // iteration span of the evidence window
	LastIter  int       `json:"last_iter"`
	Score     float64   `json:"score"` // detector-specific magnitude (see each detector)
	Detail    string    `json:"detail,omitempty"`
}

// DefaultRingCapacity bounds the in-memory event ring. Anomalies are
// rare by construction; 1024 holds days of noisy fleet history.
const DefaultRingCapacity = 1024

// Ring stores events in a bounded ring and optionally streams each one
// as a JSON line to a writer — the same shape as telemetry.SpanRecorder,
// so the JSONL and scrape surfaces stay in lockstep with the counters.
// All methods are safe on a nil receiver and for concurrent use.
type Ring struct {
	mu      sync.Mutex
	ring    []Event
	next    int
	filled  bool
	total   uint64
	w       io.Writer
	werr    error
	buf     []byte // reused JSONL encode buffer
	dropped uint64

	// taps observe every added event under the ring lock, in attachment
	// order — how the query layer's epoch-tagged event history rides the
	// same emit path as the ring, the JSONL stream and the counters.
	taps []*ringTap
}

// ringTap is one attached event observer.
type ringTap struct{ fn func(Event) }

// Tap registers an observer called for every subsequently added event,
// under the ring lock in attachment order — the same contract as the
// sink's commit-path taps: hand the event off quickly, do not block, and
// do not call back into the ring. The returned detach removes exactly
// this tap (idempotent). Safe on a nil ring (returns a no-op detach).
func (r *Ring) Tap(fn func(Event)) (detach func()) {
	if r == nil || fn == nil {
		return func() {}
	}
	t := &ringTap{fn: fn}
	r.mu.Lock()
	r.taps = append(r.taps, t)
	r.mu.Unlock()
	return func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		for i, tt := range r.taps {
			if tt == t {
				r.taps = append(r.taps[:i], r.taps[i+1:]...)
				return
			}
		}
	}
}

// NewRing creates a ring holding up to capacity events
// (DefaultRingCapacity when capacity ≤ 0).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &Ring{ring: make([]Event, capacity)}
}

// SetWriter streams every subsequently added event to w as one JSON
// object per line (JSONL). A nil writer turns streaming off. The first
// write error stops streaming and is retained (WriteErr); events keep
// landing in the ring regardless.
func (r *Ring) SetWriter(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.w = w
	r.werr = nil
}

// Add stores one event and streams it to the JSONL writer if one is set.
func (r *Ring) Add(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	r.ring[r.next] = e
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.filled = true
	}
	for _, t := range r.taps {
		t.fn(e)
	}
	if r.w != nil {
		if r.werr != nil {
			r.dropped++
			return
		}
		r.buf = appendEventJSON(r.buf[:0], e)
		r.buf = append(r.buf, '\n')
		if _, err := r.w.Write(r.buf); err != nil {
			r.werr = err
			r.dropped++
		}
	}
}

// Snapshot returns the buffered events, oldest first.
func (r *Ring) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.filled {
		out := make([]Event, r.next)
		copy(out, r.ring[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// AppendJSON appends the buffered events as one JSON array, oldest
// first; when n > 0 only the most recent n events are rendered. It is
// the /events scrape path: one lock hold, no intermediate values. Safe
// on nil (appends "[]").
func (r *Ring) AppendJSON(dst []byte, n int) []byte {
	if r == nil {
		return append(dst, '[', ']')
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	count := r.next
	if r.filled {
		count = len(r.ring)
	}
	skip := 0
	if n > 0 && n < count {
		skip = count - n
	}
	dst = append(dst, '[')
	emitted := 0
	emit := func(e Event) {
		if skip > 0 {
			skip--
			return
		}
		if emitted > 0 {
			dst = append(dst, ',')
		}
		dst = appendEventJSON(dst, e)
		emitted++
	}
	if r.filled {
		for _, e := range r.ring[r.next:] {
			emit(e)
		}
	}
	for _, e := range r.ring[:r.next] {
		emit(e)
	}
	return append(dst, ']')
}

// Total returns how many events have been added since creation,
// including ones evicted from the ring.
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Buffered returns the number of events currently held in the ring.
func (r *Ring) Buffered() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.filled {
		return len(r.ring)
	}
	return r.next
}

// WriteErr returns the first JSONL write error, if streaming failed.
func (r *Ring) WriteErr() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.werr
}
