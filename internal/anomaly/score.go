package anomaly

import (
	"fmt"
	"sort"
	"strings"
)

// Label is one ground-truth anomaly: the injection schedule of a labeled
// scenario, expressed in the same coordinates as Event. Lab is always
// set (for machine-scoped injections it names the containing lab);
// Machines lists the targeted machines for machine-scoped injections and
// is empty for lab-wide ones.
type Label struct {
	Kind      Kind
	Lab       string
	Machines  []string
	FirstIter int
	LastIter  int
}

// Matches reports whether e is a correct detection of this label:
// same kind, iteration spans overlapping within slack iterations, and
// compatible coordinates. A machine-scoped event matches if the machine
// is targeted, or — for lab-wide labels — if it belongs to the labeled
// lab. A lab-scoped event matches on the lab: detectors may legitimately
// escalate a dense machine-scoped injection to lab level.
func (l Label) Matches(e Event, slackIters int) bool {
	if e.Kind != l.Kind {
		return false
	}
	if e.LastIter < l.FirstIter-slackIters || e.FirstIter > l.LastIter+slackIters {
		return false
	}
	if e.Machine != "" {
		for _, m := range l.Machines {
			if m == e.Machine {
				return true
			}
		}
		return len(l.Machines) == 0 && e.Lab == l.Lab
	}
	return e.Lab == l.Lab
}

// KindScore is the precision/recall of one detector kind over a labeled
// run (or several merged with Merge).
type KindScore struct {
	Kind          Kind
	Events        int // events emitted
	MatchedEvents int // events matching ≥1 label (precision numerator)
	Labels        int // ground-truth anomalies
	HitLabels     int // labels with ≥1 matching event (recall numerator)
}

// Precision returns MatchedEvents/Events (1 when no events were emitted:
// silence on a clean trace is perfect precision).
func (s KindScore) Precision() float64 {
	if s.Events == 0 {
		return 1
	}
	return float64(s.MatchedEvents) / float64(s.Events)
}

// Recall returns HitLabels/Labels (1 when nothing was injected).
func (s KindScore) Recall() float64 {
	if s.Labels == 0 {
		return 1
	}
	return float64(s.HitLabels) / float64(s.Labels)
}

// Merge accumulates another run's counts (same kind).
func (s KindScore) Merge(o KindScore) KindScore {
	s.Events += o.Events
	s.MatchedEvents += o.MatchedEvents
	s.Labels += o.Labels
	s.HitLabels += o.HitLabels
	return s
}

// Score matches emitted events against ground-truth labels and returns
// one KindScore per detector kind (stable Kinds() order; kinds with
// neither events nor labels are included with perfect scores so the
// harness table is complete). slackIters widens every label window in
// both directions — detectors confirm a few iterations after onset and
// may date evidence a few iterations before it.
func Score(events []Event, labels []Label, slackIters int) []KindScore {
	byKind := make(map[Kind]*KindScore, len(Kinds()))
	get := func(k Kind) *KindScore {
		s := byKind[k]
		if s == nil {
			s = &KindScore{Kind: k}
			byKind[k] = s
		}
		return s
	}
	for _, k := range Kinds() {
		get(k)
	}
	hit := make([]bool, len(labels))
	for _, e := range events {
		s := get(e.Kind)
		s.Events++
		matched := false
		for i, l := range labels {
			if l.Matches(e, slackIters) {
				matched = true
				hit[i] = true
			}
		}
		if matched {
			s.MatchedEvents++
		}
	}
	for i, l := range labels {
		s := get(l.Kind)
		s.Labels++
		if hit[i] {
			s.HitLabels++
		}
	}
	out := make([]KindScore, 0, len(byKind))
	for _, s := range byKind {
		out = append(out, *s)
	}
	sort.SliceStable(out, func(i, j int) bool { return kindRank(out[i].Kind) < kindRank(out[j].Kind) })
	return out
}

func kindRank(k Kind) int {
	for i, kk := range Kinds() {
		if kk == k {
			return i
		}
	}
	return len(Kinds())
}

// MergeScores folds per-run score slices (e.g. one per seed) into one
// aggregate slice, kind by kind.
func MergeScores(runs ...[]KindScore) []KindScore {
	byKind := make(map[Kind]KindScore)
	for _, run := range runs {
		for _, s := range run {
			byKind[s.Kind] = byKind[s.Kind].Merge(KindScore{
				Kind:          s.Kind,
				Events:        s.Events,
				MatchedEvents: s.MatchedEvents,
				Labels:        s.Labels,
				HitLabels:     s.HitLabels,
			})
		}
	}
	out := make([]KindScore, 0, len(byKind))
	for k, s := range byKind {
		s.Kind = k
		out = append(out, s)
	}
	sort.SliceStable(out, func(i, j int) bool { return kindRank(out[i].Kind) < kindRank(out[j].Kind) })
	return out
}

// FormatScores renders the harness table.
func FormatScores(scores []KindScore) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %7s %7s %7s %7s %10s %8s\n",
		"detector", "events", "match", "labels", "hit", "precision", "recall")
	for _, s := range scores {
		fmt.Fprintf(&b, "%-24s %7d %7d %7d %7d %10.3f %8.3f\n",
			s.Kind, s.Events, s.MatchedEvents, s.Labels, s.HitLabels, s.Precision(), s.Recall())
	}
	return b.String()
}
