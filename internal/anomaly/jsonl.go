package anomaly

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// ReadEventsJSONL decodes an event stream written by Ring.SetWriter (one
// JSON object per line, the -events-out format) back into events, in file
// order. Blank lines are skipped; the first malformed line aborts with
// its line number, returning the events decoded so far — a truncated tail
// from a crashed run is a hard error, not silent data loss, matching the
// trace reader's posture on truncation.
func ReadEventsJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(b, &e); err != nil {
			return out, fmt.Errorf("anomaly: events jsonl line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("anomaly: events jsonl line %d: %w", line, err)
	}
	return out, nil
}
