// Package bench is the reproduction's benchmark harness: one benchmark per
// table and figure of the paper, plus the ablations called out in
// DESIGN.md §5. Each benchmark regenerates its artefact from a shared
// 14-day trace (the full 77-day run is cmd/labmon's job; the statistics
// are scale-free) and attaches the headline values as custom benchmark
// metrics, so `go test -bench .` both times the analysis pipeline and
// prints the reproduced numbers next to the paper's.
//
//	BenchmarkTable1        — hardware catalogue + fleet aggregates
//	BenchmarkTable2        — main results (uptime, CPU, RAM, swap, disk, net)
//	BenchmarkFigure2       — CPU idleness by session age
//	BenchmarkFigure3       — powered-on / user-free series
//	BenchmarkFigure4       — uptime ratios + session-length distribution
//	BenchmarkSessions      — §5.2.1 session statistics
//	BenchmarkPowerCycles   — §5.2.2 SMART analysis
//	BenchmarkFigure5       — weekly resource profiles
//	BenchmarkFigure6       — cluster-equivalence ratio
//	BenchmarkHarvest       — desktop-grid yield (extension)
//	BenchmarkAblation*     — design-choice ablations
//	BenchmarkNBench*       — the benchmark suite's own kernels
//	BenchmarkSimulation    — fleet-simulation throughput
//	BenchmarkCollection    — probe render+parse+post-collect path
package bench

import (
	"bytes"
	"os"
	"sync"
	"testing"
	"time"

	"winlab/internal/analysis"
	"winlab/internal/ddc"
	"winlab/internal/experiment"
	"winlab/internal/harvest"
	"winlab/internal/lab"
	"winlab/internal/nbench"
	"winlab/internal/predictor"
	"winlab/internal/probe"
	"winlab/internal/rng"
	"winlab/internal/trace"
	"winlab/internal/trace/stream"
)

var (
	once   sync.Once
	shared *experiment.Result
)

// dataset lazily runs one 14-day experiment shared by all benchmarks.
func dataset(b *testing.B) *experiment.Result {
	b.Helper()
	once.Do(func() {
		cfg := experiment.Default(1)
		cfg.Days = 14
		res, err := experiment.Run(cfg)
		if err != nil {
			panic(err)
		}
		shared = res
	})
	return shared
}

func BenchmarkTable1(b *testing.B) {
	var agg lab.Aggregates
	for i := 0; i < b.N; i++ {
		agg = lab.Aggregate(lab.PaperCatalog())
	}
	b.ReportMetric(agg.AvgRAMMB, "ram_MB/machine")
	b.ReportMetric(agg.AvgDiskGB, "disk_GB/machine")
	b.ReportMetric(agg.TotalGFlops, "fleet_GFlops")
}

func BenchmarkTable2(b *testing.B) {
	res := dataset(b)
	b.ResetTimer()
	var t2 analysis.Table2
	for i := 0; i < b.N; i++ {
		t2 = analysis.MainResults(res.Dataset, analysis.DefaultForgottenThreshold)
	}
	b.ReportMetric(t2.Both.UptimePct, "uptime_%")
	b.ReportMetric(t2.Both.CPUIdlePct, "cpu_idle_%")
	b.ReportMetric(t2.NoLogin.CPUIdlePct, "cpu_idle_nologin_%")
	b.ReportMetric(t2.WithLogin.CPUIdlePct, "cpu_idle_login_%")
	b.ReportMetric(t2.Both.RAMLoadPct, "ram_%")
	b.ReportMetric(t2.Both.DiskUsedGB, "disk_GB")
}

func BenchmarkFigure2(b *testing.B) {
	res := dataset(b)
	b.ResetTimer()
	var p analysis.SessionAgeProfile
	for i := 0; i < b.N; i++ {
		p = analysis.SessionAge(res.Dataset, 24)
	}
	b.ReportMetric(float64(p.FirstBucketAtOrAbove(99)), "forgotten_threshold_h")
}

func BenchmarkFigure3(b *testing.B) {
	res := dataset(b)
	b.ResetTimer()
	var av analysis.AvailabilitySeries
	for i := 0; i < b.N; i++ {
		av = analysis.Availability(res.Dataset, analysis.DefaultForgottenThreshold)
	}
	b.ReportMetric(av.AvgPoweredOn, "powered_on")
	b.ReportMetric(av.AvgUserFree, "user_free")
}

func BenchmarkFigure4(b *testing.B) {
	res := dataset(b)
	b.ResetTimer()
	var us []analysis.MachineUptime
	for i := 0; i < b.N; i++ {
		us = analysis.UptimeRatios(res.Dataset)
	}
	b.ReportMetric(float64(analysis.CountAbove(us, 0.5)), "machines_above_0.5")
	b.ReportMetric(float64(analysis.CountAbove(us, 0.8)), "machines_above_0.8")
}

func BenchmarkSessions(b *testing.B) {
	res := dataset(b)
	b.ResetTimer()
	var st analysis.SessionStats
	for i := 0; i < b.N; i++ {
		st = analysis.Sessions(res.Dataset, 96*time.Hour, 24)
	}
	b.ReportMetric(float64(st.Count), "sessions")
	b.ReportMetric(st.Mean.Hours(), "mean_h")
	b.ReportMetric(100*st.ShortFraction, "under_96h_%")
}

func BenchmarkPowerCycles(b *testing.B) {
	res := dataset(b)
	b.ResetTimer()
	var pc analysis.PowerCycleStats
	for i := 0; i < b.N; i++ {
		pc = analysis.PowerCycles(res.Dataset)
	}
	b.ReportMetric(pc.CyclesPerDay, "cycles/machine-day")
	b.ReportMetric(100*pc.UndetectedRatio, "undetected_%")
	b.ReportMetric(pc.LifetimePerCycle.Hours(), "lifetime_h/cycle")
}

func BenchmarkFigure5(b *testing.B) {
	res := dataset(b)
	b.ResetTimer()
	var w *analysis.WeeklyProfiles
	for i := 0; i < b.N; i++ {
		w = analysis.Weekly(res.Dataset)
	}
	_, idle := w.MinCPUIdleSlot()
	b.ReportMetric(idle, "min_weekly_idle_%")
}

func BenchmarkFigure6(b *testing.B) {
	res := dataset(b)
	b.ResetTimer()
	var eq analysis.EquivalenceResult
	for i := 0; i < b.N; i++ {
		eq = analysis.Equivalence(res.Dataset, true)
	}
	b.ReportMetric(eq.TotalRatio, "equivalence")
	b.ReportMetric(eq.OccupiedRatio, "occupied")
	b.ReportMetric(eq.FreeRatio, "free")
}

func BenchmarkHarvest(b *testing.B) {
	res := dataset(b)
	b.ResetTimer()
	var r harvest.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = harvest.Run(res.Dataset, harvest.Config{
			TaskWork: 25, Checkpoint: 15 * time.Minute, Policy: harvest.FreeOnly,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Equivalence, "harvested_equivalence")
	b.ReportMetric(float64(r.CompletedTasks), "tasks")
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §5).

// BenchmarkAblationThreshold sweeps the forgotten-session threshold and
// reports the with-login share at 6 h vs the paper's 10 h choice.
func BenchmarkAblationThreshold(b *testing.B) {
	res := dataset(b)
	b.ResetTimer()
	var at6, at10, raw float64
	for i := 0; i < b.N; i++ {
		t6 := analysis.MainResults(res.Dataset, 6*time.Hour)
		t10 := analysis.MainResults(res.Dataset, 10*time.Hour)
		t0 := analysis.MainResults(res.Dataset, 0)
		at6 = t6.WithLogin.UptimePct
		at10 = t10.WithLogin.UptimePct
		raw = t0.WithLogin.UptimePct
	}
	b.ReportMetric(at6, "login_%_thresh6h")
	b.ReportMetric(at10, "login_%_thresh10h")
	b.ReportMetric(raw, "login_%_raw")
}

// BenchmarkAblationEquivalenceWeighting quantifies how much NBench-index
// normalisation changes the equivalence ratio.
func BenchmarkAblationEquivalenceWeighting(b *testing.B) {
	res := dataset(b)
	b.ResetTimer()
	var weighted, unweighted float64
	for i := 0; i < b.N; i++ {
		weighted = analysis.Equivalence(res.Dataset, true).TotalRatio
		unweighted = analysis.Equivalence(res.Dataset, false).TotalRatio
	}
	b.ReportMetric(weighted, "weighted")
	b.ReportMetric(unweighted, "unweighted")
}

// BenchmarkAblationSamplingPeriod reruns the collector at a 30-minute
// period over the same fleet evolution and reports how many sessions each
// period detects relative to ground truth.
func BenchmarkAblationSamplingPeriod(b *testing.B) {
	res15 := dataset(b)
	gt := experiment.Truth(res15)
	var n30 int
	for i := 0; i < b.N; i++ {
		cfg := experiment.Default(1)
		cfg.Days = 14
		cfg.Period = 30 * time.Minute
		res30, err := experiment.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		n30 = len(analysis.DetectSessions(res30.Dataset))
	}
	n15 := len(analysis.DetectSessions(res15.Dataset))
	b.ReportMetric(float64(gt.PowerSessions), "true_sessions")
	b.ReportMetric(float64(n15), "detected_15m")
	b.ReportMetric(float64(n30), "detected_30m")
}

// BenchmarkAblationHarvestCheckpoint sweeps checkpoint intervals.
func BenchmarkAblationHarvestCheckpoint(b *testing.B) {
	res := dataset(b)
	b.ResetTimer()
	var none, ck15 float64
	for i := 0; i < b.N; i++ {
		rs, err := harvest.SweepCheckpoint(res.Dataset, 25, harvest.FreeOnly,
			[]time.Duration{0, 15 * time.Minute})
		if err != nil {
			b.Fatal(err)
		}
		none, ck15 = rs[0].Equivalence, rs[1].Equivalence
	}
	b.ReportMetric(none, "no_checkpoint")
	b.ReportMetric(ck15, "checkpoint_15m")
}

// ---------------------------------------------------------------------------
// Infrastructure benchmarks.

// BenchmarkAnalyzeAll measures the parallel analysis driver: every table
// and figure of the paper computed concurrently over one shared frozen
// index (bit-identical to the serial per-function calls, see
// analysis.TestAllMatchesSerial).
func BenchmarkAnalyzeAll(b *testing.B) {
	res := dataset(b)
	b.ResetTimer()
	var r *analysis.Results
	for i := 0; i < b.N; i++ {
		r = analysis.All(res.Dataset, analysis.Options{})
	}
	b.ReportMetric(r.Table2.Both.UptimePct, "uptime_%")
	b.ReportMetric(r.Equivalence.TotalRatio, "equivalence")
}

// BenchmarkSimulation measures fleet-simulation throughput: one simulated
// day of the full 169-machine institution per iteration.
func BenchmarkSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiment.Default(int64(i + 1))
		cfg.Days = 1
		if _, err := experiment.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulationWorkers is BenchmarkSimulation with the collector's
// probe render/parse fan-out enabled (4 workers). The collected trace is
// identical (see experiment.TestRunWorkersEquivalent); the difference is
// pure wall time on multi-core hosts.
func BenchmarkSimulationWorkers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiment.Default(int64(i + 1))
		cfg.Days = 1
		cfg.Workers = 4
		if _, err := experiment.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProbeRender measures the probe's report generation on the
// collection hot path: probe.AppendRender into a reused buffer, exactly
// how the pooled collectors render (0 allocs/op).
func BenchmarkProbeRender(b *testing.B) {
	fleet := lab.BuildPaperFleet(1)
	m := fleet.Machines[0]
	at := time.Date(2003, 10, 6, 8, 0, 0, 0, time.UTC)
	m.PowerOn(at)
	sn, _ := m.Snapshot(at.Add(time.Hour))
	buf := probe.AppendRender(nil, sn)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = probe.AppendRender(buf[:0], sn)
		if len(buf) == 0 {
			b.Fatal("empty report")
		}
	}
}

// BenchmarkProbeRenderAlloc is the convenience probe.Render wrapper
// (fresh buffer per call) — the pre-pooling behaviour, kept for
// comparison against BenchmarkProbeRender.
func BenchmarkProbeRenderAlloc(b *testing.B) {
	fleet := lab.BuildPaperFleet(1)
	m := fleet.Machines[0]
	at := time.Date(2003, 10, 6, 8, 0, 0, 0, time.UTC)
	m.PowerOn(at)
	sn, _ := m.Snapshot(at.Add(time.Hour))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := probe.Render(sn); len(out) == 0 {
			b.Fatal("empty report")
		}
	}
}

// BenchmarkProbeParse measures the coordinator-side parse path with a
// reused Parser — the in-place byte codec with string interning that the
// sink runs per report (0 allocs/op in steady state).
func BenchmarkProbeParse(b *testing.B) {
	fleet := lab.BuildPaperFleet(1)
	m := fleet.Machines[0]
	at := time.Date(2003, 10, 6, 8, 0, 0, 0, time.UTC)
	m.PowerOn(at)
	sn, _ := m.Snapshot(at.Add(time.Hour))
	out := probe.Render(sn)
	p := probe.NewParser()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.ParseBytes(out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollection measures the full render→post-collect→dataset path.
func BenchmarkCollection(b *testing.B) {
	fleet := lab.BuildPaperFleet(1)
	at := time.Date(2003, 10, 6, 8, 0, 0, 0, time.UTC)
	for _, m := range fleet.Machines {
		m.PowerOn(at)
	}
	now := at.Add(time.Hour)
	exec := &ddc.Direct{
		Source: lab.Source{Fleet: fleet},
		Now:    func() time.Time { return now },
	}
	buf := make([]byte, 0, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink := ddc.NewDatasetSink(at, at.AddDate(0, 0, 1), 15*time.Minute, nil)
		for _, m := range fleet.Machines {
			out, err := exec.ExecAppend(buf[:0], m.ID)
			sink.Post(0, m.ID, out, err)
			if out != nil {
				buf = out[:0]
			}
		}
		ds, err := sink.Dataset()
		if err != nil {
			b.Fatal(err)
		}
		if len(ds.Samples) != fleet.Size() {
			b.Fatalf("samples = %d", len(ds.Samples))
		}
	}
}

// BenchmarkTraceWrite measures trace serialisation throughput.
func BenchmarkTraceWrite(b *testing.B) {
	res := dataset(b)
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := trace.WriteFile(dir+"/t.csv", res.Dataset); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceRead measures trace parsing throughput.
func BenchmarkTraceRead(b *testing.B) {
	res := dataset(b)
	dir := b.TempDir()
	if err := trace.WriteFile(dir+"/t.csv", res.Dataset); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.ReadFile(dir + "/t.csv"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceWriteTB measures TBv1 binary serialisation throughput
// and reports the on-disk size relative to the CSV encoding of the same
// dataset (the ISSUE target is ≤40%).
func BenchmarkTraceWriteTB(b *testing.B) {
	res := dataset(b)
	dir := b.TempDir()
	if err := trace.WriteFile(dir+"/t.csv", res.Dataset); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := trace.WriteFile(dir+"/t.tb", res.Dataset); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	csvInfo, err1 := os.Stat(dir + "/t.csv")
	tbInfo, err2 := os.Stat(dir + "/t.tb")
	if err1 != nil || err2 != nil {
		b.Fatal(err1, err2)
	}
	b.ReportMetric(100*float64(tbInfo.Size())/float64(csvInfo.Size()), "size_%_of_csv")
}

// BenchmarkTraceReadTB measures TBv1 binary parsing throughput (via the
// sniffing ReadFile, as consumers load it).
func BenchmarkTraceReadTB(b *testing.B) {
	res := dataset(b)
	dir := b.TempDir()
	if err := trace.WriteFile(dir+"/t.tb", res.Dataset); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.ReadFile(dir + "/t.tb"); err != nil {
			b.Fatal(err)
		}
	}
}

var (
	tbOnce  sync.Once
	tbBytes []byte
)

// streamTB lazily encodes the shared dataset to canonical TBv1 bytes
// (frozen first, so the encoding is machine-contiguous) for the
// out-of-core benchmarks.
func streamTB(b *testing.B) []byte {
	res := dataset(b)
	tbOnce.Do(func() {
		res.Dataset.Freeze()
		var buf bytes.Buffer
		if err := trace.WriteBinary(&buf, res.Dataset); err != nil {
			panic(err)
		}
		tbBytes = buf.Bytes()
	})
	return tbBytes
}

// BenchmarkTraceStreamCursor measures the chunked TBv1 cursor: full
// decode into reused run buffers, no Dataset materialisation. Compare
// with BenchmarkTraceReadTB (the batch decode) — same bytes, constant
// memory.
func BenchmarkTraceStreamCursor(b *testing.B) {
	tb := streamTB(b)
	b.SetBytes(int64(len(tb)))
	b.ReportAllocs()
	b.ResetTimer()
	var run stream.Run
	for i := 0; i < b.N; i++ {
		c, err := stream.New(bytes.NewReader(tb))
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			ok, err := c.NextRun(&run)
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
			n += len(run.Samples)
		}
		if uint64(n) != c.DeclaredSamples() {
			b.Fatalf("decoded %d of %d samples", n, c.DeclaredSamples())
		}
	}
}

// BenchmarkAnalyzeAllStream measures the sequential out-of-core
// analysis: every table and figure in one pass over the TBv1 bytes,
// bit-identical to BenchmarkAnalyzeAll's artefacts.
func BenchmarkAnalyzeAllStream(b *testing.B) {
	tb := streamTB(b)
	b.SetBytes(int64(len(tb)))
	b.ResetTimer()
	var r *analysis.Results
	for i := 0; i < b.N; i++ {
		c, err := stream.New(bytes.NewReader(tb))
		if err != nil {
			b.Fatal(err)
		}
		r, err = analysis.AllStream(c, analysis.Options{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Table2.Both.UptimePct, "uptime_%")
	b.ReportMetric(r.Equivalence.TotalRatio, "equivalence")
}

// BenchmarkAnalyzeAllStreamParallel is AllStream with machine-sharded
// accumulators across 4 workers (counts exact, merged floats within
// epsilon; see validate's stream/allstream-parallel arm).
func BenchmarkAnalyzeAllStreamParallel(b *testing.B) {
	tb := streamTB(b)
	b.SetBytes(int64(len(tb)))
	b.ResetTimer()
	var r *analysis.Results
	for i := 0; i < b.N; i++ {
		c, err := stream.New(bytes.NewReader(tb))
		if err != nil {
			b.Fatal(err)
		}
		r, err = analysis.AllStream(c, analysis.Options{Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Table2.Both.UptimePct, "uptime_%")
	b.ReportMetric(r.Equivalence.TotalRatio, "equivalence")
}

// BenchmarkNBenchKernels measures every kernel of the NBench suite.
func BenchmarkNBenchKernels(b *testing.B) {
	for _, k := range nbench.Kernels() {
		k := k
		b.Run(k.Name(), func(b *testing.B) {
			k.Setup(rng.Derive(1, k.Name()))
			b.ResetTimer()
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink += k.Iterate()
			}
			_ = sink
		})
	}
}

// BenchmarkLabUsage regenerates the per-laboratory breakdown.
func BenchmarkLabUsage(b *testing.B) {
	res := dataset(b)
	b.ResetTimer()
	var us []analysis.LabUsage
	for i := 0; i < b.N; i++ {
		us = analysis.ByLab(res.Dataset, analysis.DefaultForgottenThreshold)
	}
	if len(us) != 11 {
		b.Fatalf("labs = %d", len(us))
	}
}

// BenchmarkCapacity regenerates the §6 harvestable-capacity report.
func BenchmarkCapacity(b *testing.B) {
	res := dataset(b)
	b.ResetTimer()
	var c analysis.CapacityReport
	for i := 0; i < b.N; i++ {
		c = analysis.Capacity(res.Dataset)
	}
	b.ReportMetric(c.FleetFreeRAMGB, "fleet_free_RAM_GB")
	b.ReportMetric(c.FleetFreeDiskTB, "fleet_free_disk_TB")
}

// BenchmarkAblationReplication runs the bag-of-tasks master at replication
// factors 1 and 2: makespan insurance vs wasted duplicate work.
func BenchmarkAblationReplication(b *testing.B) {
	res := dataset(b)
	b.ResetTimer()
	var rs []harvest.QueueResult
	for i := 0; i < b.N; i++ {
		var err error
		rs, err = harvest.CompareReplication(res.Dataset,
			harvest.QueueConfig{Tasks: 2000, TaskWork: 25, Checkpoint: 15 * time.Minute, Policy: harvest.FreeOnly},
			[]int{1, 2})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rs[0].Makespan.Hours(), "makespan_h_r1")
	b.ReportMetric(rs[1].Makespan.Hours(), "makespan_h_r2")
	b.ReportMetric(rs[1].WastedWork, "wasted_idxh_r2")
}

// BenchmarkAblationPlacement quantifies predictor-guided placement: harvest
// only the most stable half of the fleet (by historical 1-hour survival)
// versus harvesting everything, and compare eviction counts and per-machine
// efficiency.
func BenchmarkAblationPlacement(b *testing.B) {
	res := dataset(b)
	model := predictor.Fit(res.Dataset, time.Hour)
	stable := model.StableSet(0.5, 20)
	b.ResetTimer()
	var all, top harvest.QueueResult
	for i := 0; i < b.N; i++ {
		var err error
		all, err = harvest.RunQueue(res.Dataset, harvest.QueueConfig{
			Tasks: 100000, TaskWork: 25, Checkpoint: 15 * time.Minute, Policy: harvest.FreeOnly,
		})
		if err != nil {
			b.Fatal(err)
		}
		top, err = harvest.RunQueue(res.Dataset, harvest.QueueConfig{
			Tasks: 100000, TaskWork: 25, Checkpoint: 15 * time.Minute, Policy: harvest.FreeOnly,
			MachineFilter: func(id string) bool { return stable[id] },
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(all.Evictions), "evictions_all")
	b.ReportMetric(float64(top.Evictions), "evictions_stable_half")
	b.ReportMetric(float64(all.CompletedTasks), "tasks_all")
	b.ReportMetric(float64(top.CompletedTasks), "tasks_stable_half")
}

// BenchmarkPredictor measures fitting and scoring the survival predictor.
func BenchmarkPredictor(b *testing.B) {
	res := dataset(b)
	b.ResetTimer()
	var ev predictor.Evaluation
	for i := 0; i < b.N; i++ {
		m := predictor.Fit(res.Dataset, time.Hour)
		ev = m.Evaluate(res.Dataset)
	}
	b.ReportMetric(100*ev.Skill(), "brier_skill_%")
	b.ReportMetric(ev.BaseRate, "survival_base_rate")
}
