// Quickstart: run a one-week scaled-down monitoring experiment and print
// the paper's main-results table (Table 2) plus the headline availability
// numbers.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"winlab/internal/analysis"
	"winlab/internal/core"
	"winlab/internal/report"
)

func main() {
	// Start from the paper's configuration and shrink it: 7 days instead
	// of 77. Everything else — the 169-machine fleet, the 15-minute
	// probing, the behaviour model — stays as in the paper.
	cfg := core.DefaultConfig(42)
	cfg.Days = 7

	res, err := core.RunExperiment(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected %d samples in %d iterations over %d machines\n\n",
		res.Collector.Samples, res.Collector.Iterations, len(res.Dataset.Machines))

	// Table 2: resource usage split by interactive-session presence.
	t2 := analysis.MainResults(res.Dataset, analysis.DefaultForgottenThreshold)
	report.Table2(t2).Render(os.Stdout)

	// The two headline findings of the paper:
	av := analysis.Availability(res.Dataset, analysis.DefaultForgottenThreshold)
	eq := analysis.Equivalence(res.Dataset, true)
	fmt.Printf("\nOn average %.1f of %d machines were powered on; %.1f of those were user-free.\n",
		av.AvgPoweredOn, len(res.Dataset.Machines), av.AvgUserFree)
	fmt.Printf("Cluster equivalence ratio: %.2f (the paper's \"2:1 rule\": N non-dedicated\n"+
		"machines are worth roughly N/2 dedicated ones).\n", eq.TotalRatio)
}
