// Harvest: replay a collected monitoring trace through the desktop-grid
// harvesting simulator and quantify (a) how much of the idleness-derived
// cluster-equivalence upper bound survives machine volatility, and (b) how
// much checkpointing frequency matters — the "survival techniques" the
// paper's conclusion calls for.
//
//	go run ./examples/harvest
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"winlab/internal/analysis"
	"winlab/internal/core"
	"winlab/internal/harvest"
	"winlab/internal/report"
)

func main() {
	cfg := core.DefaultConfig(7)
	cfg.Days = 21 // three weeks is plenty for stable yield numbers

	fmt.Fprintln(os.Stderr, "simulating 21 days of monitoring...")
	res, err := core.RunExperiment(cfg)
	if err != nil {
		log.Fatal(err)
	}
	d := res.Dataset

	upper := analysis.Equivalence(d, true)
	fmt.Printf("idleness-derived equivalence (upper bound): %.3f\n\n", upper.TotalRatio)

	// Tasks of one NBench-index-hour each (roughly 2.4 minutes on a fast
	// P4 of the fleet), harvested from user-free machines, at several
	// checkpoint intervals.
	intervals := []time.Duration{
		0, // no checkpointing: evictions restart tasks
		15 * time.Minute,
		time.Hour,
		4 * time.Hour,
	}
	results, err := harvest.SweepCheckpoint(d, 25, harvest.FreeOnly, intervals)
	if err != nil {
		log.Fatal(err)
	}
	t := &report.Table{
		Title:   "Harvest yield vs checkpoint interval (free machines only, 25 index-hour tasks)",
		Headers: []string{"Checkpoint", "Tasks done", "Harvested idx-h", "Lost idx-h", "Evictions", "Equivalence"},
	}
	for _, r := range results {
		ck := "none"
		if r.Config.Checkpoint > 0 {
			ck = r.Config.Checkpoint.String()
		}
		t.AddRow(ck,
			fmt.Sprintf("%d", r.CompletedTasks),
			fmt.Sprintf("%.0f", r.HarvestedWork),
			fmt.Sprintf("%.0f", r.LostWork),
			fmt.Sprintf("%d", r.Evictions),
			fmt.Sprintf("%.3f", r.Equivalence))
	}
	t.Render(os.Stdout)

	// Harvesting occupied machines too (they are still ~94% idle).
	all, err := harvest.Run(d, harvest.Config{TaskWork: 25, Checkpoint: 15 * time.Minute, Policy: harvest.All})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nharvesting occupied machines too: equivalence %.3f (vs %.3f free-only)\n",
		all.Equivalence, results[1].Equivalence)
}
