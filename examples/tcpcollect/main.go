// Tcpcollect: the collection pipeline over a real network. Machines of a
// simulated lab are exposed through TCP probe agents on localhost; the DDC
// coordinator probes them with the same executor interface the in-process
// collector uses, parses the W32Probe reports at the coordinator side and
// prints what it learned.
//
//	go run ./examples/tcpcollect
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"winlab/internal/behavior"
	"winlab/internal/core"
	"winlab/internal/ddc"
	"winlab/internal/lab"
	"winlab/internal/machine"
	"winlab/internal/probe"
	"winlab/internal/sim"
)

// acceleratedFleet advances a simulated fleet in warped wall time.
type acceleratedFleet struct {
	mu    sync.Mutex
	eng   *sim.Engine
	fleet *lab.Fleet
	base  time.Time
	start time.Time
	accel float64
}

// Snapshot implements ddc.StateSource at the current warped instant.
func (a *acceleratedFleet) Snapshot(id string, _ time.Time) (machine.Snapshot, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	at := a.start.Add(time.Duration(float64(time.Since(a.base)) * a.accel))
	a.eng.RunUntil(at)
	m := a.fleet.Get(id)
	if m == nil {
		return machine.Snapshot{}, false
	}
	return m.Snapshot(at)
}

func main() {
	const accel = 6000 // one wall second = 100 simulated minutes

	specs := lab.PaperCatalog()[:2] // two labs, 32 machines
	fleet := lab.Build(specs, 5, lab.DefaultDiskLife())
	start := core.DefaultConfig(5).Start.Add(9 * time.Hour) // Monday 09:00
	eng := sim.New(start)
	behavior.NewModel(behavior.DefaultConfig(5), fleet).Install(eng, start, start.AddDate(0, 0, 30))

	af := &acceleratedFleet{eng: eng, fleet: fleet, base: time.Now(), start: start, accel: accel}

	// One agent serving all machines (agents multiplex fine; cmd/ddcd shows
	// the one-agent-per-machine layout instead).
	agent := &ddc.Agent{Source: af}
	addr, err := agent.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer agent.Close()

	exec := ddc.NewTCPExecutor()
	for _, m := range fleet.Machines {
		exec.Register(m.ID, addr)
	}

	// Probe every machine three times, 150 ms (= 15 simulated minutes)
	// apart, and report what came back.
	for round := 0; round < 3; round++ {
		up, down, withUser := 0, 0, 0
		for _, m := range fleet.Machines {
			out, err := exec.Exec(m.ID)
			if err != nil {
				down++
				continue
			}
			sn, err := probe.Parse(out)
			if err != nil {
				log.Fatalf("bad report from %s: %v", m.ID, err)
			}
			up++
			if sn.HasSession() {
				withUser++
			}
		}
		fmt.Printf("round %d: %2d up (%2d with user), %2d unreachable\n",
			round+1, up, withUser, down)
		time.Sleep(150 * time.Millisecond)
	}
	fmt.Println("\nthe same Executor interface drives ddc.WallCollector and ddc.SimCollector;")
	fmt.Println("see cmd/ddcd for the full coordinator loop over TCP.")
}
