// Tcpcollect: the collection pipeline over a real network. Machines of a
// simulated lab are exposed through TCP probe agents on localhost; the DDC
// coordinator probes them with the same executor interface the in-process
// collector uses, parses the W32Probe reports at the coordinator side and
// prints what it learned.
//
// The hardened-collector knobs are demonstrable from the command line:
// -failp injects seeded transient probe failures between the coordinator
// and the TCP transport, and -retries gives the collector a retry budget
// to absorb them. Compare:
//
//	go run ./examples/tcpcollect -failp 0.2            # paper-style: losses
//	go run ./examples/tcpcollect -failp 0.2 -retries 2 # hardened: recovered
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"winlab/internal/behavior"
	"winlab/internal/core"
	"winlab/internal/ddc"
	"winlab/internal/lab"
	"winlab/internal/machine"
	"winlab/internal/probe"
	"winlab/internal/sim"
)

// acceleratedFleet advances a simulated fleet in warped wall time.
type acceleratedFleet struct {
	mu    sync.Mutex
	eng   *sim.Engine
	fleet *lab.Fleet
	base  time.Time
	start time.Time
	accel float64
}

// Snapshot implements ddc.StateSource at the current warped instant.
func (a *acceleratedFleet) Snapshot(id string, _ time.Time) (machine.Snapshot, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	at := a.start.Add(time.Duration(float64(time.Since(a.base)) * a.accel))
	a.eng.RunUntil(at)
	m := a.fleet.Get(id)
	if m == nil {
		return machine.Snapshot{}, false
	}
	return m.Snapshot(at)
}

func main() {
	var (
		failp   = flag.Float64("failp", 0, "injected transient probe-failure probability")
		retries = flag.Int("retries", 0, "extra probe attempts per machine per round")
		seed    = flag.Int64("seed", 5, "seed (fleet and fault injection)")
	)
	flag.Parse()

	const accel = 6000 // one wall second = 100 simulated minutes

	specs := lab.PaperCatalog()[:2] // two labs, 32 machines
	fleet := lab.Build(specs, *seed, lab.DefaultDiskLife())
	start := core.DefaultConfig(*seed).Start.Add(9 * time.Hour) // Monday 09:00
	eng := sim.New(start)
	behavior.NewModel(behavior.DefaultConfig(*seed), fleet).Install(eng, start, start.AddDate(0, 0, 30))

	af := &acceleratedFleet{eng: eng, fleet: fleet, base: time.Now(), start: start, accel: accel}

	// One agent serving all machines (agents multiplex fine; cmd/ddcd shows
	// the one-agent-per-machine layout instead).
	agent := &ddc.Agent{Source: af}
	addr, err := agent.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer agent.Close()

	tcp := ddc.NewTCPExecutor()
	var ids []string
	for _, m := range fleet.Machines {
		tcp.Register(m.ID, addr)
		ids = append(ids, m.ID)
	}

	// Optionally wrap the transport in deterministic fault injection, the
	// same wrapper the retry-policy tests use.
	var exec ddc.Executor = tcp
	var faults *ddc.FaultExecutor
	if *failp > 0 {
		faults = &ddc.FaultExecutor{Inner: tcp, TransientFailP: *failp, Seed: *seed}
		exec = faults
	}

	// Probe every machine three times, 150 ms (= 15 simulated minutes)
	// apart, through the hardened collector loop, and report what came
	// back round by round.
	coll := &ddc.WallCollector{
		Cfg:   ddc.Config{Machines: ids, Period: 150 * time.Millisecond},
		Exec:  exec,
		Retry: ddc.RetryPolicy{MaxAttempts: 1 + *retries, BaseBackoff: 5 * time.Millisecond, Jitter: 0.5, Seed: *seed},
	}
	withUser := 0
	coll.Post = func(iter int, id string, out []byte, err error) {
		if err != nil {
			return
		}
		sn, perr := probe.Parse(out)
		if perr != nil {
			log.Fatalf("bad report from %s: %v", id, perr)
		}
		if sn.HasSession() {
			withUser++
		}
	}
	coll.OnIteration = func(info ddc.IterationInfo) {
		fmt.Printf("round %d: %2d up (%2d with user), %2d unreachable, %d probes (%d retries)\n",
			info.Iter+1, info.Responded, withUser, info.Attempted-info.Responded,
			info.Probes, info.Retries)
		withUser = 0
	}
	st, err := coll.Run(3, nil)
	if err != nil {
		log.Fatal(err)
	}
	if faults != nil {
		fs := faults.Stats()
		fmt.Printf("\nfault injection: %d transient failures over %d probe attempts; "+
			"collector recovered %d via retries\n", fs.Transients, fs.Calls, st.Retries)
	}
	fmt.Println("\nthe same Executor interface drives ddc.WallCollector and ddc.SimCollector;")
	fmt.Println("see cmd/ddcd for the full coordinator loop over TCP.")
}
