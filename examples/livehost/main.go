// Livehost: the whole collection pipeline against the real machine this
// example runs on (Linux). The local host is exposed through a probe agent
// (exactly what `w32probe -serve` does), a DDC coordinator collects a few
// fast iterations over TCP, and the analysis computes CPU idleness from
// the host's genuine /proc counters — the paper's methodology, minus the
// classroom.
//
//	go run ./examples/livehost
package main

import (
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"winlab/internal/analysis"
	"winlab/internal/ddc"
	"winlab/internal/hostprobe"
	"winlab/internal/machine"
	"winlab/internal/report"
	"winlab/internal/trace"
)

// hostSource serves the local host regardless of the requested ID.
type hostSource struct{}

// Snapshot implements ddc.StateSource against this machine.
func (hostSource) Snapshot(id string, at time.Time) (machine.Snapshot, bool) {
	sn, err := hostprobe.Snapshot(at)
	if err != nil {
		return machine.Snapshot{}, false
	}
	sn.ID = id
	return sn, true
}

func main() {
	if runtime.GOOS != "linux" {
		fmt.Println("livehost needs Linux (/proc); try the simulated examples instead")
		return
	}
	const (
		iters  = 6
		period = 2 * time.Second
	)
	agent := &ddc.Agent{Source: hostSource{}}
	addr, err := agent.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer agent.Close()

	exec := ddc.NewTCPExecutor()
	exec.Register("this-host", addr)

	start := time.Now()
	sink := ddc.NewDatasetSink(start, start.Add(iters*period), period, []trace.MachineInfo{
		{ID: "this-host", Lab: "local", IntIndex: 1, FPIndex: 1},
	})
	coll := &ddc.WallCollector{
		Cfg:  ddc.Config{Machines: []string{"this-host"}, Period: period},
		Exec: exec,
		Post: sink.Post,
	}
	coll.OnIteration = sink.OnIteration

	fmt.Fprintf(os.Stderr, "collecting %d samples of this host, %s apart...\n", iters, period)
	if _, err := coll.Run(iters, nil); err != nil {
		log.Fatal(err)
	}
	ds, err := sink.Dataset()
	if err != nil {
		log.Fatal(err)
	}

	t := &report.Table{
		Title:   "Local host samples (real /proc counters)",
		Headers: []string{"Time", "Uptime", "CPU idle cum.", "RAM %", "Free disk GB"},
	}
	for i := range ds.Samples {
		s := &ds.Samples[i]
		t.AddRow(s.Time.Format("15:04:05"),
			s.Uptime.Round(time.Second).String(),
			s.CPUIdle.Round(time.Second).String(),
			fmt.Sprintf("%d", s.MemLoadPct),
			fmt.Sprintf("%.1f", s.FreeDiskGB))
	}
	t.Render(os.Stdout)

	// Between-sample CPU idleness, the paper's §4.2 computation, over real
	// counters.
	fmt.Println()
	for _, iv := range ds.Intervals(2 * period) {
		fmt.Printf("interval %s → %s: CPU idleness %.1f%%\n",
			iv.A.Time.Format("15:04:05"), iv.B.Time.Format("15:04:05"), iv.CPUIdlePct())
	}
	t2 := analysis.MainResults(ds, analysis.DefaultForgottenThreshold)
	fmt.Printf("\nmean CPU idleness of this host right now: %.1f%% (the paper's fleet: 97.9%%)\n",
		t2.Both.CPUIdlePct)
}
