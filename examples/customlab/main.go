// Customlab: monitor your own institution instead of the paper's. This
// example defines a different laboratory catalogue (a small modern-ish
// fleet), tweaks the behaviour model (no Saturday opening, heavier
// interactive CPU), runs a two-week experiment and compares its headline
// numbers against the paper fleet's.
//
//	go run ./examples/customlab
package main

import (
	"fmt"
	"log"
	"os"

	"winlab/internal/analysis"
	"winlab/internal/core"
	"winlab/internal/lab"
	"winlab/internal/report"
)

func main() {
	custom := []lab.Spec{
		{Name: "CS1", Machines: 24, CPUModel: "Intel Pentium 4", CPUGHz: 3.0,
			RAMMB: 512, DiskGB: 120, IntIndex: 45, FPIndex: 42, BaseImgGB: 28},
		{Name: "CS2", Machines: 24, CPUModel: "Intel Pentium 4", CPUGHz: 3.0,
			RAMMB: 512, DiskGB: 120, IntIndex: 45, FPIndex: 42, BaseImgGB: 28},
		{Name: "EE1", Machines: 12, CPUModel: "Intel Pentium III", CPUGHz: 1.0,
			RAMMB: 256, DiskGB: 40, IntIndex: 20, FPIndex: 17, BaseImgGB: 12},
	}

	cfg := core.DefaultConfig(99)
	cfg.Days = 14
	cfg.Labs = custom
	// Behaviour tweaks: these labs close on Saturdays and host CPU-heavier
	// coursework (e.g. simulations) in CS1.
	cfg.Behavior.SaturdayFactor = 0
	cfg.Behavior.SaturdayClassMeanPerLab = 0
	cfg.Behavior.InteractiveCPUMean = 0.11
	cfg.Behavior.CPUHogLabs = []string{"CS1"}
	// The OS/app memory model is keyed by RAM size; the custom fleet uses
	// the same 512/256 MB classes so the defaults apply unchanged.

	res, err := core.RunExperiment(cfg)
	if err != nil {
		log.Fatal(err)
	}
	report.Table1(custom).Render(os.Stdout)
	fmt.Println(report.Table1Aggregates(custom))

	t2 := analysis.MainResults(res.Dataset, analysis.DefaultForgottenThreshold)
	report.Table2(t2).Render(os.Stdout)

	eq := analysis.Equivalence(res.Dataset, true)
	fmt.Printf("\ncustom fleet equivalence ratio: %.2f (occupied %.2f + free %.2f)\n",
		eq.TotalRatio, eq.OccupiedRatio, eq.FreeRatio)
	fmt.Println("\nCompare with the paper fleet: go run ./examples/quickstart")
}
