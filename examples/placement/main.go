// Placement: predictor-guided harvesting with an honest train/test split.
// Week one of a three-week trace trains a machine-survival predictor; the
// remaining two weeks are harvested twice — once over every machine, once
// restricted to the predicted-stable half — and the eviction/yield
// trade-off is reported. This is the "survival techniques" theme of the
// paper's conclusion turned into a scheduler policy.
//
//	go run ./examples/placement
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"winlab/internal/core"
	"winlab/internal/harvest"
	"winlab/internal/predictor"
	"winlab/internal/report"
	"winlab/internal/trace"
)

func main() {
	cfg := core.DefaultConfig(11)
	cfg.Days = 21
	fmt.Fprintln(os.Stderr, "simulating 21 days of monitoring...")
	res, err := core.RunExperiment(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Honest split: fit on week 1, act on weeks 2–3.
	train, test := trace.SplitAt(res.Dataset, cfg.Start.AddDate(0, 0, 7))
	model := predictor.Fit(train, time.Hour)

	// Out-of-sample predictor quality.
	ev := model.Evaluate(test)
	fmt.Printf("survival predictor (1 h horizon, out of sample): base rate %.3f, "+
		"Brier %.4f vs %.4f constant → skill %.1f%%\n\n",
		ev.BaseRate, ev.Brier, ev.BaseBrier, 100*ev.Skill())

	stable := model.StableSet(0.5, 20)
	fmt.Printf("predicted-stable set: %d of %d machines\n\n", len(stable), len(res.Dataset.Machines))

	run := func(name string, filter func(string) bool) harvest.QueueResult {
		r, err := harvest.RunQueue(test, harvest.QueueConfig{
			Tasks: 1_000_000, TaskWork: 25, Checkpoint: 15 * time.Minute,
			Policy: harvest.FreeOnly, MachineFilter: filter,
		})
		if err != nil {
			log.Fatal(err)
		}
		_ = name
		return r
	}
	all := run("all", nil)
	top := run("stable", func(id string) bool { return stable[id] })

	t := &report.Table{
		Title:   "Harvesting weeks 2-3 (25 index-hour tasks, 15 m checkpoints)",
		Headers: []string{"Policy", "Tasks", "Evictions", "Lost idx-h", "Evictions per 1000 tasks"},
	}
	row := func(name string, r harvest.QueueResult) {
		per1000 := 0.0
		if r.CompletedTasks > 0 {
			per1000 = 1000 * float64(r.Evictions) / float64(r.CompletedTasks)
		}
		t.AddRow(name,
			fmt.Sprintf("%d", r.CompletedTasks),
			fmt.Sprintf("%d", r.Evictions),
			fmt.Sprintf("%.0f", r.LostWork),
			fmt.Sprintf("%.2f", per1000))
	}
	row("every machine", all)
	row("predicted-stable half", top)
	t.Render(os.Stdout)

	fmt.Println("\nplacement on predicted-stable machines trades raw throughput for a")
	fmt.Println("lower eviction rate per task; most volatility in this fleet strikes")
	fmt.Println("every machine alike (the 4 am sweep), which caps what placement alone")
	fmt.Println("can save — checkpointing (see examples/harvest) remains the big lever.")
}
