package bench

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"winlab/internal/ddc"
	"winlab/internal/machine"
	"winlab/internal/sim"
	"winlab/internal/trace"
	"winlab/internal/trace/check"
	"winlab/internal/trace/stream"
)

// ---------------------------------------------------------------------------
// Grid-scale collection smoke (`make gridscale`) and the sharded
// collection benchmark.
//
// The paper's fleet is 169 machines; the sharded collector exists so the
// same coordinator architecture holds at grid scale — ≥100k machines —
// without ever materialising the fleet dataset. The harness probes an
// arithmetic PureSource (snapshots are pure functions of (machine,
// instant), so the render work runs on the shard goroutines), writes
// each shard's samples out as time-chunked TBv1 segment files as they
// fill, and compacts the segments with the streaming merger. Peak live
// heap is asserted against a per-shard ceiling: the resident state is
// one chunk of samples per shard plus catalogues, never machines×iters.

// gridSource is an arithmetic PureSource: every field of a snapshot is
// derived from a hash of (machine ID, instant). No per-machine state
// exists, so a 100k-machine fleet costs only its ID strings.
type gridSource struct {
	start time.Time
}

func (g gridSource) Reachable(id string, at time.Time) bool { return true }

func (g gridSource) Snapshot(id string, at time.Time) (machine.Snapshot, bool) {
	h := fnv.New64a()
	h.Write([]byte(id))
	seed := h.Sum64()
	mix := seed ^ uint64(at.Unix())*0x9e3779b97f4a7c15
	boot := g.start.Add(-time.Duration(seed%72) * time.Hour)
	up := at.Sub(boot)
	return machine.Snapshot{
		Time: at, ID: id, Lab: gridLab(id),
		CPUModel: "Intel(R) Pentium(R) 4 CPU 2.40GHz", CPUGHz: 2.4,
		RAMMB: 512, SwapMB: 768, DiskGB: 74.5,
		Serial: "GRID-" + id, OS: "Windows XP",
		BootTime: boot, Uptime: up,
		CPUIdle:     up * time.Duration(50+mix%50) / 100,
		MemLoadPct:  int(mix % 101),
		SwapLoadPct: int(mix >> 8 % 101),
		FreeDiskGB:  float64(mix%60000) / 1000,
		PowerCycles: int64(seed % 2000), PowerOnHours: int64(seed % 30000),
		SentBytes: mix % (1 << 32), RecvBytes: (mix >> 16) % (1 << 32),
	}, true
}

// gridFleet builds n machine IDs ("G<lab>-m<index>", 100 machines per
// lab) and the matching catalogue metadata.
func gridFleet(n int) ([]string, []trace.MachineInfo) {
	ids := make([]string, n)
	infos := make([]trace.MachineInfo, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("G%03d-m%06d", i/100, i)
		infos[i] = trace.MachineInfo{
			ID: ids[i], Lab: gridLab(ids[i]),
			RAMMB: 512, DiskGB: 74.5, IntIndex: 30.5, FPIndex: 33.1,
		}
	}
	return ids, infos
}

func gridLab(id string) string { return id[:4] }

// chunker rolls one shard's samples into time-chunked segment files:
// every chunkIters iterations the current sink is frozen, written as a
// TBv1 segment, and replaced — bounding the shard's resident samples to
// one chunk. Runs entirely on the shard's goroutine.
type chunker struct {
	dir        string
	shard      int
	infos      []trace.MachineInfo
	period     time.Duration
	chunkIters int
	runEnd     time.Time

	sink  *ddc.DatasetSink
	count int
	segs  []trace.SegmentInfo
	err   error
}

func (c *chunker) post(iter int, machineID string, stdout []byte, err error) {
	c.sink.Post(iter, machineID, stdout, err)
}

func (c *chunker) onIteration(info ddc.IterationInfo) {
	c.sink.OnIteration(info)
	c.count++
	if c.count >= c.chunkIters {
		c.flush()
	}
}

func (c *chunker) newSink(start time.Time) {
	end := start.Add(time.Duration(c.chunkIters) * c.period)
	if end.After(c.runEnd) {
		end = c.runEnd
	}
	c.sink = ddc.NewDatasetSink(start, end, c.period, c.infos)
	c.count = 0
}

// flush freezes the current chunk, writes it as a segment and opens the
// next sink window.
func (c *chunker) flush() {
	ds, err := c.sink.Dataset()
	if err != nil && c.err == nil {
		c.err = err
	}
	nextStart := ds.End
	if len(ds.Samples) > 0 || len(ds.Iterations) > 0 {
		ds.SortSamples()
		name := fmt.Sprintf("grid-%03d-%03d.tb", c.shard, len(c.segs))
		if err := trace.WriteFileFormat(filepath.Join(c.dir, name), ds, trace.FormatTB); err != nil && c.err == nil {
			c.err = err
		}
		c.segs = append(c.segs, trace.NewSegmentInfo(name, c.shard, ds))
	}
	c.newSink(nextStart)
}

// collectGrid runs a sharded collection over the arithmetic fleet and
// returns the manifest path plus the collector's fleet-wide stats.
func collectGrid(dir string, machines, shards, iters, chunkIters int) (string, ddc.Stats, error) {
	ids, infos := gridFleet(machines)
	start := time.Date(2003, 10, 6, 8, 0, 0, 0, time.UTC)
	period := 15 * time.Minute
	end := start.Add(time.Duration(iters) * period)

	parts := ddc.PartitionN(ids, shards)
	chunkers := make([]*chunker, len(parts))
	specs := make([]ddc.ShardSpec, len(parts))
	at := 0
	for i, part := range parts {
		ck := &chunker{
			dir: dir, shard: i, infos: infos[at : at+len(part)],
			period: period, chunkIters: chunkIters, runEnd: end,
		}
		ck.newSink(start)
		at += len(part)
		chunkers[i] = ck
		specs[i] = ddc.ShardSpec{Machines: part, Post: ck.post, OnIteration: ck.onIteration}
	}

	eng := sim.New(start)
	// Sequential probing must fit the period at grid scale: 100k probes
	// × 500µs = 50 simulated seconds per sweep, well inside 15 minutes.
	lat := func() time.Duration { return 500 * time.Microsecond }
	coll := &ddc.ShardedCollector{
		Cfg: ddc.Config{
			Period:      period,
			LatencyOK:   lat,
			LatencyFail: lat,
		},
		Exec:   &ddc.PureDirect{Source: gridSource{start: start}, Now: eng.Now},
		Shards: specs,
	}
	if err := coll.Install(eng, start, end); err != nil {
		return "", ddc.Stats{}, err
	}
	eng.RunUntil(end)
	coll.Finish()

	m := &trace.Manifest{Start: start, End: end, PeriodNS: period}
	for _, ck := range chunkers {
		ck.flush() // final partial chunk
		if ck.err != nil {
			return "", ddc.Stats{}, fmt.Errorf("shard %d: %w", ck.shard, ck.err)
		}
		m.Segments = append(m.Segments, ck.segs...)
	}
	sort.Slice(m.Segments, func(a, b int) bool {
		sa, sb := m.Segments[a], m.Segments[b]
		if sa.Shard != sb.Shard {
			return sa.Shard < sb.Shard
		}
		return sa.FirstIter < sb.FirstIter
	})
	mpath := filepath.Join(dir, "grid.manifest.json")
	if err := trace.WriteManifest(mpath, m); err != nil {
		return "", ddc.Stats{}, err
	}
	return mpath, coll.Stats(), nil
}

func gridEnvInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// TestGridScale is the grid-scale gate. Defaults are CI-sized (20k
// machines × 6 iterations); `make gridscale` raises them to 100k × 12.
// The whole run — sharded collection, chunked segment write-out,
// manifest check, streaming compaction, cursor count of the compacted
// trace — executes under a monitored heap ceiling of 64 MB per shard,
// the documented bound: resident state is one chunk of samples per shard
// plus fleet catalogues, never the machines×iterations dataset.
func TestGridScale(t *testing.T) {
	if testing.Short() {
		t.Skip("grid-scale smoke collects tens of thousands of machines")
	}
	machines := gridEnvInt("GRIDSCALE_MACHINES", 20000)
	iters := gridEnvInt("GRIDSCALE_ITERS", 6)
	const shards = 8
	const chunkIters = 4
	const perShardCeiling = 64 << 20
	const ceiling = int64(shards * perShardCeiling)
	dir := t.TempDir()

	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	baseline := ms.HeapAlloc
	old := debug.SetMemoryLimit(int64(baseline) + ceiling)
	defer debug.SetMemoryLimit(old)

	var peak atomic.Uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		var m runtime.MemStats
		for {
			runtime.ReadMemStats(&m)
			for {
				p := peak.Load()
				if m.HeapAlloc <= p || peak.CompareAndSwap(p, m.HeapAlloc) {
					break
				}
			}
			select {
			case <-done:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()

	mpath, stats, err := collectGrid(dir, machines, shards, iters, chunkIters)
	if err != nil {
		t.Fatal(err)
	}
	m, err := trace.ReadManifest(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if r := check.CheckManifest(m, dir, check.Options{}); !r.OK() {
		t.Fatalf("manifest check: %v", r.Err())
	}

	// Streaming compaction straight to disk, then count the samples of
	// the compacted trace through a cursor — still never materialised.
	merged, err := os.Create(filepath.Join(dir, "grid-merged.tb"))
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.MergeSegments(merged, m, dir); err != nil {
		t.Fatal(err)
	}
	if err := merged.Close(); err != nil {
		t.Fatal(err)
	}
	c, err := stream.Open(filepath.Join(dir, "grid-merged.tb"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var total uint64
	var run stream.Run
	for {
		ok, err := c.NextRun(&run)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		total += uint64(len(run.Samples))
	}
	done <- struct{}{}
	<-done

	want := uint64(machines) * uint64(iters)
	if total != want || uint64(stats.Samples) != want {
		t.Fatalf("compacted trace has %d samples, collector booked %d, want %d", total, stats.Samples, want)
	}
	if len(c.Machines()) != machines {
		t.Fatalf("compacted catalogue has %d machines, want %d", len(c.Machines()), machines)
	}

	grew := int64(peak.Load()) - int64(baseline)
	if grew > ceiling {
		t.Errorf("peak heap grew %d B over baseline, ceiling %d B (%d MB/shard × %d shards)",
			grew, ceiling, perShardCeiling>>20, shards)
	}
	t.Logf("%d machines × %d iters across %d shards (%d segments): heap growth %0.1f MB, ceiling %d MB",
		machines, iters, shards, len(m.Segments), float64(grew)/(1<<20), ceiling>>20)
}

// BenchmarkShardedCollection measures sharded collection wall time on a
// paper-scale fleet at 1/2/4/8 shards: one simulated day (96 iterations)
// of 169 machines per op. The serial residue per probe is the scheduling
// chain's reachability check and RNG draw; the render/parse/commit work
// scales with shard count (the PR 8 acceptance bar is ≥3× at 8 shards
// over 1 shard).
func BenchmarkShardedCollection(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			ids, infos := gridFleet(169)
			start := time.Date(2003, 10, 6, 8, 0, 0, 0, time.UTC)
			period := 15 * time.Minute
			end := start.AddDate(0, 0, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				parts := ddc.PartitionN(ids, shards)
				specs := make([]ddc.ShardSpec, len(parts))
				sinks := make([]*ddc.DatasetSink, len(parts))
				at := 0
				for s, part := range parts {
					sink := ddc.NewDatasetSink(start, end, period, infos[at:at+len(part)])
					at += len(part)
					sinks[s] = sink
					specs[s] = ddc.ShardSpec{Machines: part, Post: sink.Post, OnIteration: sink.OnIteration}
				}
				eng := sim.New(start)
				lat := func() time.Duration { return 800 * time.Millisecond }
				coll := &ddc.ShardedCollector{
					Cfg:    ddc.Config{Period: period, LatencyOK: lat, LatencyFail: lat},
					Exec:   &ddc.PureDirect{Source: gridSource{start: start}, Now: eng.Now},
					Shards: specs,
				}
				if err := coll.Install(eng, start, end); err != nil {
					b.Fatal(err)
				}
				eng.RunUntil(end)
				coll.Finish()
				if got := coll.Stats().Samples; got != 169*96 {
					b.Fatalf("samples = %d", got)
				}
			}
		})
	}
}
